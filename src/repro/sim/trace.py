"""Block-level execution tracing.

Records the sequence of basic blocks (and call-edge transitions) a run
actually takes.  Used by tests to validate edge-count reconstruction
and by users to compare a real execution against the ILP's extreme
path (:mod:`repro.analysis.path_extract`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg import CFG
from ..codegen import Program
from .interp import ExecResult, Interpreter


@dataclass
class BlockTrace:
    """The block-level history of one simulated call."""

    #: (function name, block id) in execution order.
    sequence: list[tuple[str, int]]
    result: ExecResult

    def for_function(self, name: str) -> list[int]:
        return [block for fn, block in self.sequence if fn == name]

    def edge_counts(self, cfg: CFG) -> dict[str, int]:
        """Observed counts of `cfg`'s edges (entry/exit included).

        The projected block sequence of a function steps along that
        function's own edges (an f-edge bridges the callee excursion).
        When the function is invoked several times and its last block
        also has a real edge back to the entry block, the projection
        is ambiguous; use this on singly-invoked functions (such as
        the analysis entry).
        """
        counts = {edge.name: 0 for edge in cfg.edges}
        blocks = self.for_function(cfg.name)
        if not blocks:
            return counts
        counts[cfg.entry_edge.name] += 1
        by_pair: dict[tuple[int, int], str] = {}
        for edge in cfg.edges:
            if edge.src is not None and edge.dst is not None:
                by_pair.setdefault((edge.src, edge.dst), edge.name)
        for a, b in zip(blocks, blocks[1:]):
            name = by_pair.get((a, b))
            if name is not None:
                counts[name] += 1
            elif b == cfg.entry_block:
                counts[cfg.entry_edge.name] += 1   # fresh invocation
        # Every execution of a returning block leaves via its exit edge.
        for edge in cfg.exit_edges():
            counts[edge.name] = blocks.count(edge.src)
        return counts


class _BlockRecorder:
    """Cycle-model shim that records block leaders as they execute."""

    def __init__(self, program: Program, cfgs: dict[str, CFG]):
        self.sequence: list[tuple[str, int]] = []
        self._leaders: dict[int, tuple[str, int]] = {}
        for name, cfg in cfgs.items():
            for block in cfg.blocks.values():
                self._leaders[block.start] = (name, block.id)

    def execute(self, instr) -> int:
        hit = self._leaders.get(instr.addr // 4)
        if hit is not None:
            self.sequence.append(hit)
        return 0


def record_block_trace(program: Program, entry: str, *args,
                       globals_init: dict | None = None) -> BlockTrace:
    """Run `entry` and return its block-level trace."""
    from ..cfg import build_cfgs

    cfgs = build_cfgs(program)
    recorder = _BlockRecorder(program, cfgs)
    interp = Interpreter(program, cycle_model=recorder)
    for name, value in (globals_init or {}).items():
        interp.set_global(name, value)
    result = interp.run(entry, *args)
    return BlockTrace(recorder.sequence, result)

"""repro.synth — the tightness lab.

Closes the estimate↔reality loop around the IPET analysis:

* :mod:`repro.synth.gen` — seeded, knob-graded MiniC program
  generator (exact loop bounds and input domains by construction);
* :mod:`repro.synth.search` — witness-guided worst-case input
  synthesis on the cycle-accurate simulator, reporting
  realized-vs-estimated tightness;
* :mod:`repro.synth.fuzz` — differential soundness fuzzing
  (``best <= measured <= worst``, serial == engine) with a
  delta-debugging shrinker;
* :mod:`repro.synth.corpus` — content-addressed program corpus that
  replays as service load (``repro submit --corpus``).

CLI: ``repro synth gen|hunt|fuzz|tightness``; experiments:
``python -m repro.experiments tightness``; docs: ``docs/synth.md``.
"""

from .corpus import Corpus, CorpusError, submit_corpus
from .fuzz import (FuzzReport, Violation, check_program, run_campaign,
                   shrink)
from .gen import (GRADES, Domain, GenConfig, GeneratedProgram,
                  generate, generate_many, random_minic_cases,
                  resolve_config)
from .search import (SearchResult, benchmark_domain, hunt_benchmark,
                     hunt_generated, mutate_inputs, path_agreement,
                     search_worst, witness_targets)

__all__ = [
    "Domain", "GenConfig", "GRADES", "GeneratedProgram",
    "generate", "generate_many", "random_minic_cases",
    "resolve_config",
    "SearchResult", "search_worst", "hunt_benchmark",
    "hunt_generated", "benchmark_domain", "witness_targets",
    "path_agreement", "mutate_inputs",
    "FuzzReport", "Violation", "check_program", "run_campaign",
    "shrink",
    "Corpus", "CorpusError", "submit_corpus",
]

"""Content-addressed corpus of generated programs.

A :class:`Corpus` is a directory of JSON entries, one per generated
program, addressed by the program's content digest (sha256 of entry +
source, truncated) and sharded by the first two digest characters the
way the engine's result cache is.  Entries carry everything needed to
re-analyze, re-simulate or re-submit the program without the generator
that produced it: source, entry, exact loop bounds, input domains and
the generating seed/grade.

The corpus doubles as a **service load source**: every entry converts
to a ``repro submit`` JobSpec payload (source-flavor job with explicit
bounds), so a fuzz campaign's output can be replayed as heavy traffic
against ``repro serve`` — see :func:`submit_corpus` and the
``--corpus`` flag of ``repro submit``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ReproError
from .gen import GeneratedProgram

SCHEMA = 1


class CorpusError(ReproError):
    """A corpus entry is missing or corrupt."""


class Corpus:
    """Directory-backed, content-addressed program store."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- layout --------------------------------------------------------
    def path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def ids(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.ids())

    def __contains__(self, digest: str) -> bool:
        return self.path(digest).exists()

    # -- write ---------------------------------------------------------
    def add(self, prog: GeneratedProgram,
            meta: dict | None = None) -> str:
        """Store one program; returns its digest.  Idempotent — an
        existing entry with the same content is left untouched."""
        digest = prog.digest
        path = self.path(digest)
        if path.exists():
            return digest
        entry = {"schema": SCHEMA, "digest": digest}
        entry.update(prog.to_dict())
        if meta:
            entry["meta"] = dict(meta)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, indent=1, sort_keys=True)
                       + "\n")
        tmp.replace(path)
        return digest

    # -- read ----------------------------------------------------------
    def get(self, digest: str) -> GeneratedProgram:
        path = self.path(digest)
        if not path.exists():
            raise CorpusError(f"no corpus entry {digest!r} under "
                              f"{self.root}")
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError) as error:
            raise CorpusError(
                f"corpus entry {digest!r} is corrupt: {error}") \
                from None
        if entry.get("schema") != SCHEMA:
            raise CorpusError(
                f"corpus entry {digest!r} has schema "
                f"{entry.get('schema')!r}, expected {SCHEMA}")
        prog = GeneratedProgram.from_dict(entry)
        if prog.digest != digest:
            raise CorpusError(
                f"corpus entry {digest!r} fails its content check "
                f"(recomputed {prog.digest})")
        return prog

    def __iter__(self):
        for digest in self.ids():
            yield self.get(digest)


# ----------------------------------------------------------------------
# Service feed
# ----------------------------------------------------------------------
def submit_corpus(client, corpus: Corpus, *, ids=None,
                  limit: int | None = None,
                  machine: str | None = None,
                  backend: str | None = None, wait: bool = True,
                  timeout: float = 300.0, progress=None) -> list[dict]:
    """Replay corpus entries through a running analysis service.

    `client` is a :class:`repro.service.ServiceClient`.  Submits each
    selected entry as a source-flavor job (exact bounds included) and,
    when `wait` is true, blocks for every record.  Returns one dict
    per entry: ``{digest, id, best, worst, cache_hit}`` (bounds are
    None with ``wait=False``)."""
    selected = list(ids) if ids is not None else corpus.ids()
    if limit is not None:
        selected = selected[:limit]
    records = []
    tickets = []
    for digest in selected:
        prog = corpus.get(digest)
        spec = prog.job_spec(machine=machine, backend=backend)
        ticket = client.submit_retry(spec)
        tickets.append((digest, ticket["id"]))
    for index, (digest, job_id) in enumerate(tickets):
        record = {"digest": digest, "id": job_id, "best": None,
                  "worst": None, "cache_hit": None}
        if wait:
            done = client.wait(job_id, timeout=timeout)
            record.update(best=done.get("best"),
                          worst=done.get("worst"),
                          cache_hit=done.get("cache_hit"))
        records.append(record)
        if progress is not None:
            progress(index + 1, len(tickets), record)
    return records

"""Differential soundness fuzzing over generated programs.

The campaign runner generates N seeded MiniC programs
(:mod:`repro.synth.gen`), analyzes each one twice — serially through
:class:`repro.Analysis` and through the engine's
:func:`~repro.engine.core.execute_job` worker path — measures it on
the cycle-accurate simulator across sampled boundary + random inputs,
and asserts the paper's core soundness contract on every run:

    ``best_bound <= measured cycles <= worst_bound``

and, differentially, that the engine path reproduces the serial
interval bit for bit.

Any violating program is **delta-debugged** down to a minimal
reproducer: the shrinker greedily removes statements, hoists branch
arms, unwraps loops and collapses trip counts on the generator's
statement IR, re-checking the violation after each reduction, until no
single edit preserves it (ddmin's 1-minimality, specialized to trees).

Campaign progress is observable: ``synth.fuzz.*`` counters and a
``synth.fuzz`` span flow through the usual MetricsRegistry/Tracer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.core import execute_job
from ..hw import Machine
from ..obs import NULL_TRACER
from .gen import (GeneratedProgram, If, Loop, ProgramIR, copy_ir,
                  from_ir, generate)


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
@dataclass
class Violation:
    """One soundness failure, with its minimized reproducer."""

    kind: str                      # "worst" | "best" | "engine" | "error"
    detail: str
    program: GeneratedProgram
    inputs: dict | None = None
    measured: int | None = None
    best: int | None = None
    worst: int | None = None
    minimized: GeneratedProgram | None = None
    shrink_steps: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "seed": self.program.seed,
            "grade": self.program.grade,
            "source": self.program.source,
            "inputs": self.inputs,
            "measured": self.measured,
            "best": self.best,
            "worst": self.worst,
            "minimized": (self.minimized.source
                          if self.minimized else None),
            "shrink_steps": self.shrink_steps,
        }


@dataclass
class FuzzReport:
    """Campaign totals."""

    seed: int
    grade: str
    programs: int = 0
    sim_runs: int = 0
    analyses: int = 0
    wall_seconds: float = 0.0
    engine: bool = True
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "grade": self.grade,
            "programs": self.programs,
            "sim_runs": self.sim_runs,
            "analyses": self.analyses,
            "wall_seconds": round(self.wall_seconds, 3),
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self) -> str:
        lines = [
            f"fuzz campaign: {self.programs} programs "
            f"(grade {self.grade}, seed {self.seed}), "
            f"{self.analyses} analyses, {self.sim_runs} simulator "
            f"runs in {self.wall_seconds:.1f}s",
        ]
        if self.ok:
            differential = (" ; engine == serial on every program"
                            if self.engine else "")
            lines.append("soundness: OK "
                         "(best <= measured <= worst on every run"
                         f"{differential})")
        else:
            lines.append(f"soundness: {len(self.violations)} "
                         "VIOLATION(S)")
            for v in self.violations:
                lines.append(f"  [{v.kind}] {v.detail}")
                if v.minimized is not None:
                    lines.append(
                        f"  minimized to "
                        f"{len(v.minimized.source.splitlines())} lines "
                        f"in {v.shrink_steps} shrink steps")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Single-program check
# ----------------------------------------------------------------------
def check_program(prog: GeneratedProgram, *,
                  machine: Machine | None = None,
                  inputs_per_program: int = 6, engine: bool = True,
                  bound_fn=None, registry=None) -> Violation | None:
    """Analyze + measure one program; None means it passed.

    `bound_fn` maps a BoundReport to the ``(best, worst)`` interval to
    check against — the default uses the report's own interval; tests
    inject an artificially broken bound here to exercise the shrinker.
    """
    try:
        analysis = prog.analysis(machine=machine)
        report = analysis.estimate()
    except Exception as error:
        return Violation(kind="error", program=prog,
                         detail=f"analysis failed: {error}")
    if registry is not None:
        registry.counter("synth.fuzz.analyses").inc()
    best, worst = report.best, report.worst
    if bound_fn is not None:
        best, worst = bound_fn(report)

    if engine:
        result = execute_job(
            (prog.analysis_job(machine=machine), None, None, None,
             False))
        if registry is not None:
            registry.counter("synth.fuzz.analyses").inc()
        if not result.ok or result.report is None:
            return Violation(kind="engine", program=prog,
                             detail=f"engine job failed: "
                                    f"{result.error}")
        if (result.report.best, result.report.worst) \
                != (report.best, report.worst):
            return Violation(
                kind="engine", program=prog,
                best=report.best, worst=report.worst,
                detail=(f"engine interval "
                        f"[{result.report.best}, "
                        f"{result.report.worst}] != serial "
                        f"[{report.best}, {report.worst}]"))

    for inputs in prog.sample_inputs(inputs_per_program):
        try:
            measured = prog.run(inputs, machine=machine).cycles
        except Exception as error:
            return Violation(kind="error", program=prog,
                             inputs=inputs,
                             detail=f"simulation failed: {error}")
        if registry is not None:
            registry.counter("synth.fuzz.sim_runs").inc()
        if measured > worst:
            return Violation(
                kind="worst", program=prog, inputs=inputs,
                measured=measured, best=best, worst=worst,
                detail=f"measured {measured} > worst bound {worst}")
        if measured < best:
            return Violation(
                kind="best", program=prog, inputs=inputs,
                measured=measured, best=best, worst=worst,
                detail=f"measured {measured} < best bound {best}")
    return None


# ----------------------------------------------------------------------
# Delta-debugging shrinker
# ----------------------------------------------------------------------
def _reductions(ir: ProgramIR):
    """Yield candidate IRs, each one structural edit smaller.

    Edits, in decreasing aggressiveness: delete a statement, replace
    an ``if`` by one of its arms (or drop the ``else``), splice a
    loop's body in place of the loop, collapse a loop to one trip.
    """
    def bodies(stmts, path):
        """Every (container, path) list in the tree, outermost first."""
        yield stmts, path
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, If):
                yield from bodies(stmt.then, path + ((index, "then"),))
                yield from bodies(stmt.orelse,
                                  path + ((index, "orelse"),))
            elif isinstance(stmt, Loop):
                yield from bodies(stmt.body, path + ((index, "body"),))

    def resolve(root, path):
        stmts = root
        for index, attr in path:
            stmts = getattr(stmts[index], attr)
        return stmts

    for fi, fn in enumerate(ir.functions):
        for stmts, path in bodies(fn.body, ()):
            for index, stmt in enumerate(stmts):
                # 1. delete the statement outright
                copy = copy_ir(ir)
                resolve(copy.functions[fi].body, path).pop(index)
                yield copy
                # 2. structural unwraps
                if isinstance(stmt, If):
                    for arm in ("then", "orelse"):
                        if not getattr(stmt, arm):
                            continue
                        copy = copy_ir(ir)
                        target = resolve(copy.functions[fi].body,
                                         path)
                        target[index:index + 1] = \
                            getattr(target[index], arm)
                        yield copy
                    if stmt.orelse:
                        copy = copy_ir(ir)
                        target = resolve(copy.functions[fi].body,
                                         path)
                        target[index].orelse = []
                        yield copy
                elif isinstance(stmt, Loop):
                    copy = copy_ir(ir)
                    target = resolve(copy.functions[fi].body, path)
                    target[index:index + 1] = target[index].body
                    yield copy
                    if stmt.trips > 1:
                        copy = copy_ir(ir)
                        target = resolve(copy.functions[fi].body,
                                         path)
                        target[index].trips = 1
                        yield copy


def shrink(prog: GeneratedProgram, is_violating, *,
           max_steps: int = 400,
           registry=None) -> tuple[GeneratedProgram, int]:
    """Greedy 1-minimal reduction preserving ``is_violating``.

    `is_violating` takes a candidate :class:`GeneratedProgram` and
    returns truthy while the bug reproduces; exceptions count as "does
    not reproduce" (e.g. a reduction produced an uncompilable or
    unanalyzable program).  Returns ``(minimal_program, steps_used)``.
    """
    if prog.ir is None:
        return prog, 0
    current = prog
    steps = 0
    reduced = True
    while reduced and steps < max_steps:
        reduced = False
        for candidate_ir in _reductions(current.ir):
            steps += 1
            if registry is not None:
                registry.counter("synth.fuzz.shrink_steps").inc()
            candidate = from_ir(candidate_ir, seed=current.seed,
                                grade=current.grade,
                                domain=current.domain)
            try:
                still_bad = bool(is_violating(candidate))
            except Exception:
                still_bad = False
            if still_bad:
                current = candidate
                reduced = True
                break
            if steps >= max_steps:
                break
    return current, steps


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------
def run_campaign(seed: int, count: int, grade: str = "small", *,
                 machine: Machine | None = None,
                 inputs_per_program: int = 6, engine: bool = True,
                 bound_fn=None, corpus=None, max_violations: int = 5,
                 shrink_violations: bool = True, registry=None,
                 tracer=None, progress=None) -> FuzzReport:
    """Run a seeded N-program differential soundness campaign.

    Stops collecting after `max_violations` failures (each one costs a
    shrink).  `corpus` (a :class:`repro.synth.corpus.Corpus`) receives
    every generated program.  `progress` is an optional callable
    ``(index, count, violations)`` for live reporting.
    """
    tracer = tracer or NULL_TRACER
    report = FuzzReport(seed=seed, grade=grade, engine=engine)
    started = time.perf_counter()
    with tracer.span("synth.fuzz", cat="synth", seed=seed,
                     count=count, grade=grade) as span:
        for index in range(count):
            prog = generate(seed * 1_000_003 + index, grade=grade,
                            registry=registry)
            report.programs += 1
            if registry is not None:
                registry.counter("synth.fuzz.programs").inc()
            if corpus is not None:
                corpus.add(prog)
            violation = check_program(
                prog, machine=machine,
                inputs_per_program=inputs_per_program, engine=engine,
                bound_fn=bound_fn, registry=registry)
            report.analyses += 1 + (1 if engine else 0)
            report.sim_runs += inputs_per_program
            if violation is not None:
                if registry is not None:
                    registry.counter("synth.fuzz.violations").inc()
                if shrink_violations and violation.kind != "error":
                    kind = violation.kind

                    def reproduces(candidate) -> bool:
                        found = check_program(
                            candidate, machine=machine,
                            inputs_per_program=inputs_per_program,
                            engine=engine, bound_fn=bound_fn)
                        return (found is not None
                                and found.kind == kind)

                    violation.minimized, violation.shrink_steps = \
                        shrink(prog, reproduces, registry=registry)
                report.violations.append(violation)
            if progress is not None:
                progress(index + 1, count, len(report.violations))
            if len(report.violations) >= max_violations:
                break
        report.wall_seconds = time.perf_counter() - started
        span.set("programs", report.programs)
        span.set("violations", len(report.violations))
    return report

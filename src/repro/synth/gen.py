"""Seeded, knob-graded MiniC program generator.

The promotion of the old ``tests/tests_support_random.py`` helper into
a first-class subsystem: every generated program is

* **semantically valid** — it compiles, every loop is a counted
  ``for`` whose trip count the generator *knows*, so the emitted
  :attr:`GeneratedProgram.loop_bounds` are exact by construction
  (``lo == hi == trips``; the analysis's loop constraints are relative
  to the loop-entry count, so the bounds stay exact even for loops
  nested under data-dependent branches);
* **terminating** — a per-function dynamic step budget caps the
  product of nested trip counts;
* **value-safe** — multiplications and shifts are clamped with the
  benchmark suite's own ``% 65536`` idiom (cf. ``matgen``/``des``) so
  no feedback loop can grow unbounded integers;
* **input-driven** — globals (scalars and arrays) with a known
  :class:`Domain` feed every branch condition, so worst-case input
  search has something to optimize.

Programs are graded (``tiny``/``small``/``medium``/``large``) by a
:class:`GenConfig` knob bundle: statement count, nesting depth, loop
trip ranges, array and helper-function counts.

The generator builds a small statement IR first and pretty-prints it
with line tracking; the IR is kept on the result so the fuzzer's
shrinker (:mod:`repro.synth.fuzz`) can delta-debug violating programs
structurally instead of textually.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace

from ..analysis import Analysis
from ..codegen import Program, compile_source
from ..engine.jobs import AnalysisJob
from ..hw import Machine
from ..sim import Dataset, run_with_cycles

#: Default value range for generated scalar globals / array elements.
VALUE_LO = -16
VALUE_HI = 16

#: Assignments whose expression multiplies or shifts are clamped with
#: this modulus (the suite's own matgen/des idiom) so iterated products
#: cannot blow up into huge integers.
CLAMP = 65536


# ----------------------------------------------------------------------
# Input domains
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Domain:
    """Value range of one global input (scalar, or array of `size`)."""

    lo: int
    hi: int
    size: int | None = None          # None => scalar

    @property
    def is_array(self) -> bool:
        return self.size is not None

    def clamp(self, value: int) -> int:
        return max(self.lo, min(self.hi, value))

    def sample(self, rng: random.Random):
        if self.is_array:
            return [rng.randint(self.lo, self.hi)
                    for _ in range(self.size)]
        return rng.randint(self.lo, self.hi)

    def to_json(self) -> list:
        if self.is_array:
            return [self.lo, self.hi, self.size]
        return [self.lo, self.hi]

    @classmethod
    def from_json(cls, data) -> "Domain":
        if len(data) == 3:
            return cls(int(data[0]), int(data[1]), int(data[2]))
        return cls(int(data[0]), int(data[1]))


# ----------------------------------------------------------------------
# Statement IR
# ----------------------------------------------------------------------
@dataclass
class Assign:
    target: str
    expr: str


@dataclass
class ArrayAssign:
    array: str
    index: str
    expr: str


@dataclass
class Call:
    target: str
    callee: str


@dataclass
class If:
    cond: str
    then: list
    orelse: list


@dataclass
class Loop:
    var: str
    trips: int
    body: list


@dataclass
class FuncIR:
    name: str
    body: list
    ret: str


@dataclass
class ProgramIR:
    scalars: list
    arrays: list                       # [(name, size), ...]
    functions: list                    # helpers first, entry last

    @property
    def entry(self) -> str:
        return self.functions[-1].name


def _copy_stmts(body: list) -> list:
    """Deep-copy a statement list (the shrinker mutates copies)."""
    out = []
    for stmt in body:
        if isinstance(stmt, If):
            out.append(If(stmt.cond, _copy_stmts(stmt.then),
                          _copy_stmts(stmt.orelse)))
        elif isinstance(stmt, Loop):
            out.append(Loop(stmt.var, stmt.trips,
                            _copy_stmts(stmt.body)))
        else:
            out.append(replace(stmt))
    return out


def copy_ir(ir: ProgramIR) -> ProgramIR:
    return ProgramIR(
        list(ir.scalars), list(ir.arrays),
        [FuncIR(fn.name, _copy_stmts(fn.body), fn.ret)
         for fn in ir.functions])


# ----------------------------------------------------------------------
# Emission (line-tracked, so loop bounds are exact by construction)
# ----------------------------------------------------------------------
def emit(ir: ProgramIR) -> tuple[str, tuple]:
    """Pretty-print the IR; returns ``(source, loop_bounds)`` where
    ``loop_bounds`` rows are ``(function, header_line, lo, hi)``."""
    lines: list[str] = []
    bounds: list[tuple] = []
    for name in ir.scalars:
        lines.append(f"int {name};")
    for name, size in ir.arrays:
        lines.append(f"int {name}[{size}];")
    for fn in ir.functions:
        lines.append(f"int {fn.name}() {{")
        _emit_body(fn.name, fn.body, 1, lines, bounds)
        lines.append(f"    return {fn.ret};")
        lines.append("}")
    return "\n".join(lines) + "\n", tuple(bounds)


def _emit_body(function: str, body: list, depth: int,
               lines: list, bounds: list) -> None:
    pad = "    " * depth
    for stmt in body:
        if isinstance(stmt, Assign):
            lines.append(f"{pad}{stmt.target} = {stmt.expr};")
        elif isinstance(stmt, ArrayAssign):
            lines.append(
                f"{pad}{stmt.array}[{stmt.index}] = {stmt.expr};")
        elif isinstance(stmt, Call):
            lines.append(f"{pad}{stmt.target} = {stmt.callee}();")
        elif isinstance(stmt, If):
            lines.append(f"{pad}if ({stmt.cond}) {{")
            _emit_body(function, stmt.then, depth + 1, lines, bounds)
            if stmt.orelse:
                lines.append(f"{pad}}} else {{")
                _emit_body(function, stmt.orelse, depth + 1, lines,
                           bounds)
            lines.append(f"{pad}}}")
        elif isinstance(stmt, Loop):
            lines.append(
                f"{pad}for (int {stmt.var} = 0; "
                f"{stmt.var} < {stmt.trips}; {stmt.var}++) {{")
            bounds.append(
                (function, len(lines), stmt.trips, stmt.trips))
            _emit_body(function, stmt.body, depth + 1, lines, bounds)
            lines.append(f"{pad}}}")
        else:                           # pragma: no cover
            raise TypeError(f"unknown statement {stmt!r}")


# ----------------------------------------------------------------------
# Configuration grades
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GenConfig:
    """Knob bundle controlling program shape and size."""

    grade: str = "small"
    scalars: int = 4
    arrays: int = 1
    array_size: int = 8
    helpers: int = 0
    top_stmts: tuple = (2, 5)         # statements at function top level
    max_depth: int = 3                # structural nesting (if + loop)
    max_loop_nest: int = 2
    trips: tuple = (1, 6)             # loop trip-count range
    #: Cap on the product of nested trip counts per function — bounds
    #: both simulator wall time and analysis blowup.
    step_budget: int = 512
    value_lo: int = VALUE_LO
    value_hi: int = VALUE_HI


GRADES: dict[str, GenConfig] = {
    "tiny": GenConfig(grade="tiny", scalars=3, arrays=0, helpers=0,
                      top_stmts=(1, 3), max_depth=2, max_loop_nest=1,
                      trips=(1, 4), step_budget=64),
    "small": GenConfig(grade="small", scalars=4, arrays=1, helpers=0,
                       top_stmts=(2, 5), max_depth=3, max_loop_nest=2,
                       trips=(1, 6), step_budget=512),
    "medium": GenConfig(grade="medium", scalars=4, arrays=1, helpers=1,
                        top_stmts=(3, 6), max_depth=3, max_loop_nest=2,
                        trips=(1, 8), step_budget=2048),
    "large": GenConfig(grade="large", scalars=6, arrays=2, helpers=2,
                       top_stmts=(4, 8), max_depth=4, max_loop_nest=3,
                       trips=(2, 8), step_budget=8192),
}


def resolve_config(grade: str | None = None,
                   config: GenConfig | None = None) -> GenConfig:
    if config is not None:
        return config
    try:
        return GRADES[grade or "small"]
    except KeyError:
        raise ValueError(
            f"unknown grade {grade!r}; choose from "
            f"{sorted(GRADES)}") from None


# ----------------------------------------------------------------------
# Generated program handle
# ----------------------------------------------------------------------
@dataclass
class GeneratedProgram:
    """One generated MiniC program plus everything needed to analyze,
    simulate and replay it: exact loop bounds, input domains, and the
    statement IR (for shrinking)."""

    seed: int
    grade: str
    source: str
    entry: str
    #: ((function, header_line, lo, hi), ...) — exact by construction.
    loop_bounds: tuple
    domain: dict                       # {global: Domain}
    ir: ProgramIR | None = field(default=None, repr=False,
                                 compare=False)
    _program: Program | None = field(default=None, repr=False,
                                     compare=False)

    # -- identity ------------------------------------------------------
    @property
    def digest(self) -> str:
        """Content address: the program *is* its source + entry."""
        blob = f"{self.entry}\n{self.source}".encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    @property
    def name(self) -> str:
        return f"synth-{self.digest}"

    # -- compilation / analysis ----------------------------------------
    @property
    def program(self) -> Program:
        if self._program is None:
            self._program = compile_source(self.source)
        return self._program

    def analysis(self, machine: Machine | None = None,
                 **kwargs) -> Analysis:
        """A ready-to-estimate Analysis with all loops bounded."""
        analysis = Analysis(self.program, self.entry, machine=machine,
                            **kwargs)
        for function, line, lo, hi in self.loop_bounds:
            analysis.bound_loop(lo, hi, function=function, line=line)
        return analysis

    def analysis_job(self, machine: Machine | None = None,
                     backend: str = "simplex") -> AnalysisJob:
        """The same analysis as an engine job (source flavor)."""
        return AnalysisJob(name=self.name, source=self.source,
                           entry=self.entry, machine=machine,
                           backend=backend,
                           bounds=tuple(self.loop_bounds))

    def job_spec(self, machine: str | None = None,
                 backend: str | None = None, **extra) -> dict:
        """A ``repro submit`` / service JobSpec payload."""
        spec = {
            "name": self.name,
            "source": self.source,
            "entry": self.entry,
            "bounds": [list(row) for row in self.loop_bounds],
        }
        if machine:
            spec["machine"] = machine
        if backend:
            spec["backend"] = backend
        spec.update(extra)
        return spec

    # -- inputs --------------------------------------------------------
    def boundary_inputs(self) -> list[dict]:
        """Deterministic corner vectors: all-lo, all-hi, all-zero,
        plus ascending/descending ramps for arrays."""
        def vector(fill) -> dict:
            out = {}
            for name, dom in self.domain.items():
                if dom.is_array:
                    out[name] = [dom.clamp(fill(dom, i, dom.size))
                                 for i in range(dom.size)]
                else:
                    out[name] = dom.clamp(fill(dom, 0, 1))
            return out

        span = lambda dom, i, n: dom.lo + (
            (dom.hi - dom.lo) * i // max(1, n - 1))
        return [
            vector(lambda dom, i, n: dom.lo),
            vector(lambda dom, i, n: dom.hi),
            vector(lambda dom, i, n: 0),
            vector(span),
            vector(lambda dom, i, n: span(dom, n - 1 - i, n)),
        ]

    def random_inputs(self, rng: random.Random) -> dict:
        return {name: dom.sample(rng)
                for name, dom in self.domain.items()}

    def sample_inputs(self, count: int, seed: int = 0) -> list[dict]:
        """Boundary vectors first, then seeded random fill."""
        rng = random.Random((seed << 8) ^ self.seed)
        vectors = self.boundary_inputs()[:count]
        while len(vectors) < count:
            vectors.append(self.random_inputs(rng))
        return vectors

    # -- execution -----------------------------------------------------
    def run(self, inputs: dict, machine: Machine | None = None,
            flush: bool = True):
        """One cycle-timed simulator run (cold cache by default)."""
        return run_with_cycles(self.program, self.entry,
                               Dataset(globals=dict(inputs)),
                               machine=machine, flush=flush)

    # -- persistence (corpus format) -----------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "grade": self.grade,
            "source": self.source,
            "entry": self.entry,
            "loop_bounds": [list(row) for row in self.loop_bounds],
            "domain": {name: dom.to_json()
                       for name, dom in self.domain.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GeneratedProgram":
        return cls(
            seed=int(data.get("seed", 0)),
            grade=str(data.get("grade", "small")),
            source=data["source"],
            entry=data["entry"],
            loop_bounds=tuple(
                (row[0], int(row[1]), int(row[2]), int(row[3]))
                for row in data.get("loop_bounds", [])),
            domain={name: Domain.from_json(dom)
                    for name, dom in data.get("domain", {}).items()},
        )


def from_ir(ir: ProgramIR, seed: int, grade: str,
            domain: dict) -> GeneratedProgram:
    """Re-emit an IR (used by the shrinker after each reduction)."""
    source, bounds = emit(ir)
    return GeneratedProgram(seed=seed, grade=grade, source=source,
                            entry=ir.entry, loop_bounds=bounds,
                            domain=dict(domain), ir=ir)


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------
class _Gen:
    def __init__(self, rng: random.Random, config: GenConfig):
        self.rng = rng
        self.config = config
        self.scalars = [f"g{i}" for i in range(config.scalars)]
        self.arrays = [(f"a{i}", config.array_size)
                       for i in range(config.arrays)]
        self.loop_counter = 0

    # -- expressions ---------------------------------------------------
    def _index(self, loops: list) -> str:
        """A provably in-range array index expression."""
        rng, size = self.rng, self.config.array_size
        kinds = ["const"]
        if loops:
            kinds += ["loop", "loop"]
        kinds.append("masked")
        kind = rng.choice(kinds)
        if kind == "const":
            return str(rng.randrange(size))
        if kind == "loop":
            return f"{rng.choice(loops)} % {size}"
        return f"({rng.choice(self.scalars)} & {size - 1})"

    def _atom(self, loops: list, exclude: str | None = None) -> str:
        rng = self.rng
        pool = [s for s in self.scalars if s != exclude]
        kinds = ["scalar", "scalar", "const"]
        if loops:
            kinds.append("loop")
        if self.arrays:
            kinds.append("array")
        kind = rng.choice(kinds)
        if kind == "scalar" and pool:
            return rng.choice(pool)
        if kind == "loop":
            return rng.choice(loops)
        if kind == "array":
            name, _ = rng.choice(self.arrays)
            return f"{name}[{self._index(loops)}]"
        return str(rng.randint(-9, 9))

    def _expr(self, loops: list, target: str | None = None,
              depth: int = 0) -> str:
        rng = self.rng
        if depth >= 2 or rng.random() < 0.35:
            return self._atom(loops)
        op = rng.choice(["+", "+", "-", "*", "&", "|", "^",
                         "<<", ">>"])
        if op in ("<<", ">>"):
            left = self._atom(loops, exclude=target)
            return f"({left} {op} {rng.randint(0, 3)})"
        if op == "*":
            left = self._atom(loops, exclude=target)
            right = rng.choice([str(rng.randint(2, 5)),
                                self._atom(loops, exclude=target)])
            return f"({left} * {right})"
        left = self._expr(loops, target, depth + 1)
        right = self._expr(loops, target, depth + 1)
        return f"({left} {op} {right})"

    def _clamped(self, expr: str) -> str:
        if "*" in expr or "<<" in expr:
            return f"({expr}) % {CLAMP}"
        return expr

    def _cond(self, loops: list) -> str:
        rng = self.rng
        lhs = self._atom(loops)
        rhs = rng.choice([str(rng.randint(-8, 8)), self._atom(loops)])
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"{lhs} {op} {rhs}"

    # -- statements ----------------------------------------------------
    def _assign(self, loops: list):
        rng = self.rng
        if self.arrays and rng.random() < 0.3:
            name, _ = rng.choice(self.arrays)
            return ArrayAssign(name, self._index(loops),
                               self._clamped(self._expr(loops)))
        target = rng.choice(self.scalars)
        return Assign(target,
                      self._clamped(self._expr(loops, target=target)))

    def _statement(self, depth: int, loop_depth: int, mult: int,
                   loops: list, callees: list):
        rng, cfg = self.rng, self.config
        kinds = ["assign", "assign", "assign"]
        if depth < cfg.max_depth:
            kinds.append("if")
            if (loop_depth < cfg.max_loop_nest
                    and mult * cfg.trips[0] <= cfg.step_budget):
                kinds += ["loop", "loop"]
        if callees:
            kinds.append("call")
        kind = rng.choice(kinds)
        if kind == "assign":
            return self._assign(loops)
        if kind == "call":
            return Call(rng.choice(self.scalars), rng.choice(callees))
        if kind == "if":
            then = self._block(rng.randint(1, 2), depth + 1,
                               loop_depth, mult, loops, callees)
            orelse = []
            if rng.random() < 0.5:
                orelse = self._block(rng.randint(1, 2), depth + 1,
                                     loop_depth, mult, loops, callees)
            return If(self._cond(loops), then, orelse)
        # loop
        self.loop_counter += 1
        var = f"i{self.loop_counter}"
        cap = max(1, cfg.step_budget // max(1, mult))
        trips = min(rng.randint(*cfg.trips), cap)
        body = self._block(rng.randint(1, 3), depth + 1,
                           loop_depth + 1, mult * trips,
                           loops + [var], callees)
        return Loop(var, trips, body)

    def _block(self, count: int, depth: int, loop_depth: int,
               mult: int, loops: list, callees: list) -> list:
        return [self._statement(depth, loop_depth, mult, loops,
                                callees)
                for _ in range(count)]

    # -- functions -----------------------------------------------------
    def _return_expr(self) -> str:
        rng = self.rng
        terms = list(self.scalars[:3]) or ["0"]
        if self.arrays:
            name, size = self.arrays[0]
            terms.append(f"{name}[{rng.randrange(size)}]")
        expr = terms[0]
        for term in terms[1:]:
            expr = f"{expr} {rng.choice(['+', '-', '^'])} {term}"
        return expr

    def build(self) -> ProgramIR:
        rng, cfg = self.rng, self.config
        helpers = [f"h{i + 1}" for i in range(cfg.helpers)]
        functions = []
        for name in helpers:
            count = rng.randint(1, max(1, cfg.top_stmts[1] - 2))
            body = self._block(count, 0, 0, 1, [], [])
            functions.append(FuncIR(name, body, self._return_expr()))
        count = rng.randint(*cfg.top_stmts)
        body = self._block(count, 0, 0, 1, [], helpers)
        # Every helper must be reachable so its loops stay on analyzed
        # paths; append a call for any the random walk missed.
        called = set()

        def scan(stmts):
            for stmt in stmts:
                if isinstance(stmt, Call):
                    called.add(stmt.callee)
                elif isinstance(stmt, If):
                    scan(stmt.then)
                    scan(stmt.orelse)
                elif isinstance(stmt, Loop):
                    scan(stmt.body)

        scan(body)
        for name in helpers:
            if name not in called:
                body.append(Call(rng.choice(self.scalars), name))
        functions.append(FuncIR("f", body, self._return_expr()))
        return ProgramIR(list(self.scalars), list(self.arrays),
                         functions)


def generate(seed: int, grade: str = "small",
             config: GenConfig | None = None,
             registry=None) -> GeneratedProgram:
    """Generate one program, deterministically from `seed`."""
    cfg = resolve_config(grade, config)
    rng = random.Random(seed)
    ir = _Gen(rng, cfg).build()
    source, bounds = emit(ir)
    domain = {name: Domain(cfg.value_lo, cfg.value_hi)
              for name in ir.scalars}
    domain.update({name: Domain(cfg.value_lo, cfg.value_hi, size)
                   for name, size in ir.arrays})
    if registry is not None:
        registry.counter("synth.gen.programs").inc()
        registry.histogram("synth.gen.lines").observe(
            len(source.splitlines()))
    return GeneratedProgram(seed=seed, grade=cfg.grade, source=source,
                            entry=ir.entry, loop_bounds=bounds,
                            domain=domain, ir=ir)


def generate_many(seed: int, count: int, grade: str = "small",
                  config: GenConfig | None = None, registry=None):
    """Yield `count` programs; program i depends only on (seed, i)."""
    for index in range(count):
        yield generate(seed * 1_000_003 + index, grade=grade,
                       config=config, registry=registry)


# ----------------------------------------------------------------------
# Back-compat shim for the old tests_support_random API
# ----------------------------------------------------------------------
def random_minic_cases(seed: int, count: int):
    """Yield ``(source, global_inputs)`` pairs of valid MiniC programs
    (the old ``tests/tests_support_random.py`` contract)."""
    rng = random.Random(seed ^ 0x5EED)
    for prog in generate_many(seed, count, grade="small"):
        yield prog.source, prog.random_inputs(rng)

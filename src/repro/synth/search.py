"""Witness-guided worst-case input search.

Closes the estimate↔reality loop (ROADMAP item 4, after Bundala &
Seshia's systematic execution-time testing): the IPET explainer
already names a witness execution-count vector for the worst-case
bound; this module tries to *realize* it by searching over concrete
input vectors executed on the cycle-accurate simulator.

Strategy — seeded (1+1) hill climbing with boundary seeding:

1. evaluate a seed population: any curated data sets the caller knows
   (e.g. a benchmark's §VI-A worst-case data), the deterministic
   boundary vectors of the input :class:`~repro.synth.gen.Domain`
   (all-lo / all-hi / zero / ascending / descending), and a few random
   vectors;
2. climb from the fittest seed by mutating one input at a time
   (boundary snaps, small steps, array sorts/reversals/swaps),
   accepting a candidate when it improves the score;
3. score lexicographically by **measured cycles** (cold cache, the
   paper's worst-case protocol) and then by **path agreement** — an
   L1 similarity between the observed per-block execution counts and
   the witness vector — so among equal-cycle inputs the search prefers
   the one that walks the predicted path;
4. stop early the moment measured == estimated: the bound is sound,
   so no input can do better.

Every simulator run and search iteration is counted through the
``synth.search.*`` metrics; a ``synth.hunt`` span wraps each search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..constraints.names import split as split_var
from ..errors import ReproError
from ..hw import Machine
from ..obs import NULL_TRACER
from ..obs.explain import explain_bound
from ..sim import Dataset, run_with_cycles
from .gen import Domain, GeneratedProgram


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class SearchResult:
    """Outcome of one worst-case input hunt."""

    name: str
    estimated: int                 # IPET worst-case bound
    realized: int                  # best measured cycles found
    inputs: dict                   # the realizing input vector
    iterations: int                # climb iterations executed
    sim_runs: int                  # total simulator evaluations
    #: Path agreement of the realizing run with the ILP witness
    #: (1.0 == identical block counts), or None when the witness is
    #: context-scoped and per-function counts don't apply.
    agreement: float | None = None
    #: Cycles of the best *seed* before climbing (the baseline the
    #: climb had to beat).
    seeded: int = 0
    #: Cycles measured on the caller's curated data set, when one was
    #: provided (a benchmark's Table III reference measurement).
    reference: int | None = None

    @property
    def ratio(self) -> float:
        """Realized/estimated tightness in [0, 1] (1.0 == exact)."""
        return self.realized / self.estimated if self.estimated else 1.0

    @property
    def exact(self) -> bool:
        return self.realized == self.estimated

    @property
    def improved(self) -> bool:
        """Did climbing beat the best seed?"""
        return self.realized > self.seeded


# ----------------------------------------------------------------------
# Witness comparison
# ----------------------------------------------------------------------
def witness_targets(explanation) -> dict:
    """``{(function, block_id): count}`` for the witness's block vars.

    Context-scoped witness entries (instance paths like ``task/f1``)
    have no direct per-function observation, so a context-sensitive
    witness yields an empty target set and the search falls back to
    cycles-only scoring.
    """
    targets: dict = {}
    for key, count in explanation.witness.items():
        scope, local = split_var(key)
        if "/" in scope or not local.startswith("x"):
            continue
        try:
            block = int(local[1:])
        except ValueError:
            continue
        targets[(scope, block)] = count
    return targets


def observed_blocks(result, cfgs) -> dict:
    """``{(function, block_id): count}`` from one simulator run."""
    observed: dict = {}
    for function, cfg in cfgs.items():
        for block_id, count in result.block_counts(cfg).items():
            observed[(function, block_id)] = count
    return observed


def path_agreement(targets: dict, observed: dict) -> float | None:
    """L1 similarity between witness and observation, in [0, 1]."""
    if not targets:
        return None
    total = sum(targets.values())
    gap = sum(abs(observed.get(key, 0) - count)
              for key, count in targets.items())
    gap += sum(count for key, count in observed.items()
               if key not in targets)
    return max(0.0, 1.0 - gap / max(1, total))


# ----------------------------------------------------------------------
# Mutation
# ----------------------------------------------------------------------
def _mutate_scalar(value: int, dom: Domain, rng: random.Random) -> int:
    quarter = max(1, (dom.hi - dom.lo) // 4)
    moves = [dom.lo, dom.hi, 0, value + 1, value - 1,
             value + quarter, value - quarter,
             rng.randint(dom.lo, dom.hi)]
    return dom.clamp(rng.choice(moves))


def _mutate_array(values: list, dom: Domain,
                  rng: random.Random) -> list:
    out = list(values)
    kind = rng.choice(["point", "point", "point", "sort", "rsort",
                       "reverse", "fill_lo", "fill_hi", "swap"])
    if kind == "point":
        i = rng.randrange(len(out))
        out[i] = _mutate_scalar(out[i], dom, rng)
    elif kind == "sort":
        out.sort()
    elif kind == "rsort":
        out.sort(reverse=True)
    elif kind == "reverse":
        out.reverse()
    elif kind == "fill_lo":
        out = [dom.lo] * len(out)
    elif kind == "fill_hi":
        out = [dom.hi] * len(out)
    else:
        i, j = rng.randrange(len(out)), rng.randrange(len(out))
        out[i], out[j] = out[j], out[i]
    return out


def mutate_inputs(inputs: dict, domain: dict,
                  rng: random.Random) -> dict:
    """One neighbor: mutate a single domain-covered input."""
    names = [name for name in inputs if name in domain]
    if not names:
        return dict(inputs)
    out = dict(inputs)
    name = rng.choice(names)
    dom = domain[name]
    if dom.is_array and isinstance(out[name], list):
        out[name] = _mutate_array(out[name], dom, rng)
    else:
        out[name] = _mutate_scalar(out[name], dom, rng)
    return out


def boundary_vectors(domain: dict) -> list[dict]:
    """Deterministic corner vectors for an arbitrary domain dict."""
    def vector(fill) -> dict:
        out = {}
        for name, dom in domain.items():
            if dom.is_array:
                out[name] = [dom.clamp(fill(dom, i, dom.size))
                             for i in range(dom.size)]
            else:
                out[name] = dom.clamp(fill(dom, 0, 1))
        return out

    ramp = lambda dom, i, n: dom.lo + (
        (dom.hi - dom.lo) * i // max(1, n - 1))
    return [
        vector(lambda dom, i, n: dom.lo),
        vector(lambda dom, i, n: dom.hi),
        vector(lambda dom, i, n: 0),
        vector(ramp),
        vector(lambda dom, i, n: ramp(dom, n - 1 - i, n)),
    ]


# ----------------------------------------------------------------------
# The search itself
# ----------------------------------------------------------------------
def search_worst(program, entry: str, domain: dict, analysis,
                 report=None, *, machine: Machine | None = None,
                 iterations: int = 32, seed: int = 0,
                 seed_inputs: tuple = (), args: tuple = (),
                 name: str = "", registry=None,
                 tracer=None) -> SearchResult:
    """Hunt for inputs realizing `analysis`'s worst-case bound.

    `domain` maps mutable global names to :class:`Domain`; globals
    outside the domain are carried through from the seed unchanged.
    `seed_inputs` are curated candidate dicts evaluated first — the
    first one's measurement is reported as ``reference``.
    """
    tracer = tracer or NULL_TRACER
    if report is None:
        report = analysis.estimate()
    estimated = report.worst
    explanation = explain_bound(analysis, report, "worst")
    targets = witness_targets(explanation)
    rng = random.Random(seed)
    runs = [0]

    def evaluate(inputs: dict):
        runs[0] += 1
        if registry is not None:
            registry.counter("synth.search.sim_runs").inc()
        try:
            result = run_with_cycles(
                program, entry, Dataset(globals=dict(inputs),
                                        args=args),
                machine=machine, flush=True)
        except ReproError:
            return None, None
        agreement = path_agreement(
            targets, observed_blocks(result, analysis.cfgs))
        return result.cycles, agreement

    with tracer.span("synth.hunt", cat="synth", target=name,
                     estimated=estimated) as span:
        # -- seed population ------------------------------------------
        seeds = [dict(inputs) for inputs in seed_inputs]
        seeds += boundary_vectors(domain)
        for _ in range(3):
            seeds.append({nm: dom.sample(rng)
                          for nm, dom in domain.items()})
        # Globals the domain doesn't cover keep the curated values.
        if seed_inputs:
            base = dict(seed_inputs[0])
            for vector in seeds[len(seed_inputs):]:
                for nm, value in base.items():
                    vector.setdefault(nm, value)

        best_inputs, best_cycles, best_agree = None, -1, None
        reference = None
        for index, vector in enumerate(seeds):
            cycles, agreement = evaluate(vector)
            if cycles is None:
                continue
            if index == 0 and seed_inputs:
                reference = cycles
            if (cycles, agreement or 0.0) > (best_cycles,
                                             best_agree or 0.0):
                best_inputs, best_cycles, best_agree = \
                    vector, cycles, agreement
        if best_inputs is None:
            raise ReproError(
                f"worst-case search for {name or entry!r}: every seed "
                "input failed to simulate")
        seeded = best_cycles

        # -- hill climb -----------------------------------------------
        steps = 0
        for steps in range(1, iterations + 1):
            if best_cycles >= estimated:
                steps -= 1         # bound realized: nothing can beat it
                break
            if registry is not None:
                registry.counter("synth.search.iterations").inc()
            candidate = mutate_inputs(best_inputs, domain, rng)
            cycles, agreement = evaluate(candidate)
            if cycles is None:
                continue
            if (cycles, agreement or 0.0) > (best_cycles,
                                             best_agree or 0.0):
                best_inputs, best_cycles, best_agree = \
                    candidate, cycles, agreement

        result = SearchResult(
            name=name or entry, estimated=estimated,
            realized=best_cycles, inputs=best_inputs,
            iterations=steps, sim_runs=runs[0],
            agreement=best_agree, seeded=seeded, reference=reference)
        span.set("realized", result.realized)
        span.set("sim_runs", result.sim_runs)
        if registry is not None:
            registry.histogram("synth.search.tightness").observe(
                result.ratio)
    return result


# ----------------------------------------------------------------------
# Convenience fronts
# ----------------------------------------------------------------------
def benchmark_domain(bench) -> dict:
    """Input :class:`Domain` map for a Table-I benchmark.

    Uses the benchmark's declared ``input_domain`` when present and
    derives ranges from the curated best/worst data sets for anything
    left undeclared.
    """
    out: dict = {}
    for name, spec in (bench.input_domain or {}).items():
        out[name] = Domain(*spec)
    for dataset in (bench.best_data, bench.worst_data):
        for name, value in dataset.globals.items():
            if name in out:
                continue
            if isinstance(value, list):
                flat = [int(v) for v in value]
                peers = dataset is bench.best_data \
                    and bench.worst_data.globals.get(name)
                if isinstance(peers, list):
                    flat += [int(v) for v in peers]
                out[name] = Domain(min(flat), max(flat), len(value))
            else:
                values = [int(value)]
                peer = (bench.worst_data if dataset is bench.best_data
                        else bench.best_data).globals.get(name)
                if peer is not None and not isinstance(peer, list):
                    values.append(int(peer))
                out[name] = Domain(min(values), max(values))
    return out


def hunt_benchmark(bench, machine: Machine | None = None, *,
                   iterations: int = 24, seed: int = 0,
                   report=None, registry=None,
                   tracer=None) -> SearchResult:
    """Worst-case input hunt for one Table-I benchmark.

    The curated worst-case data set seeds the search (its measurement
    doubles as the Table III reference), and both curated data sets'
    argument tuples must agree (they do for the whole suite).
    """
    analysis = bench.make_analysis(machine=machine)
    return search_worst(
        bench.program, bench.entry, benchmark_domain(bench), analysis,
        report=report, machine=machine, iterations=iterations,
        seed=seed,
        seed_inputs=(dict(bench.worst_data.globals),
                     dict(bench.best_data.globals)),
        args=bench.worst_data.args, name=bench.name,
        registry=registry, tracer=tracer)


def hunt_generated(prog: GeneratedProgram,
                   machine: Machine | None = None, *,
                   iterations: int = 24, seed: int = 0, report=None,
                   registry=None, tracer=None) -> SearchResult:
    """Worst-case input hunt for a generated program."""
    analysis = prog.analysis(machine=machine)
    return search_worst(
        prog.program, prog.entry, prog.domain, analysis,
        report=report, machine=machine, iterations=iterations,
        seed=seed, seed_inputs=(), name=prog.name,
        registry=registry, tracer=tracer)

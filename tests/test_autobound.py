"""Tests for automatic loop-bound derivation (paper §VII extension)."""

import pytest

from repro import Analysis
from repro.analysis import derive_loop_bounds
from repro.lang import frontend


def derive(source):
    return {b.key: b for b in derive_loop_bounds(frontend(source))}


class TestPatterns:
    def test_classic_counted_loop(self):
        bounds = derive("void f() {\n for (int i = 0; i < 10; i++) { }\n }")
        bound = bounds[("f", 2)]
        assert (bound.lo, bound.hi, bound.exact) == (10, 10, True)

    def test_le_bound(self):
        bounds = derive("void f() {\n for (int i = 1; i <= 8; i++) { }\n }")
        assert bounds[("f", 2)].hi == 8

    def test_step_two(self):
        bounds = derive("void f() {\n for (int i = 0; i < 9; i += 2) { }\n }")
        assert bounds[("f", 2)].hi == 5      # 0,2,4,6,8

    def test_downward_loop(self):
        bounds = derive("void f() {\n for (int i = 9; i > 0; i--) { }\n }")
        assert bounds[("f", 2)].hi == 9

    def test_downward_ge(self):
        bounds = derive("void f() {\n for (int i = 9; i >= 0; i -= 3) { }\n }")
        assert bounds[("f", 2)].hi == 4      # 9,6,3,0

    def test_const_global_limit(self):
        bounds = derive(
            "const int N = 12;\n"
            "void f() {\n for (int i = 0; i < N; i++) { }\n }")
        assert bounds[("f", 3)].hi == 12

    def test_flipped_comparison(self):
        bounds = derive("void f() {\n for (int i = 0; 10 > i; i++) { }\n }")
        assert bounds[("f", 2)].hi == 10

    def test_i_equals_i_plus_c_update(self):
        bounds = derive(
            "void f() {\n for (int i = 0; i < 10; i = i + 5) { }\n }")
        assert bounds[("f", 2)].hi == 2

    def test_assignment_init(self):
        bounds = derive(
            "void f() {\n int i;\n for (i = 2; i < 6; i++) { }\n }")
        assert bounds[("f", 3)].hi == 4

    def test_zero_trip_loop(self):
        bounds = derive("void f() {\n for (int i = 5; i < 5; i++) { }\n }")
        assert bounds[("f", 2)].hi == 0

    def test_while_with_monotone_counter(self):
        bounds = derive(
            "void f() {\n int i = 0;\n while (i < 4) i++;\n }")
        bound = bounds[("f", 3)]
        assert (bound.lo, bound.hi, bound.exact) == (4, 4, True)

    def test_while_step_in_block_body(self):
        bounds = derive("""
        int g;
        void f() {
            int i = 2;
            while (i <= 10) {
                g = g + i;
                i += 2;
            }
        }""")
        bound = next(iter(bounds.values()))
        assert bound.hi == 5     # i = 2,4,6,8,10

    def test_while_with_break_upper_only(self):
        bounds = derive("""
        void f(int n) {
            int i = 0;
            while (i < 6) {
                if (i == n) break;
                i++;
            }
        }""")
        bound = next(iter(bounds.values()))
        assert (bound.lo, bound.hi, bound.exact) == (0, 6, False)

    def test_global_counter_with_call_refused(self):
        # A callee could write the global index; refuse derivation.
        assert derive("""
        int i;
        void bump() { i = 0; }
        void f() {
            for (i = 0; i < 4; i++)
                bump();
        }""") == {}

    def test_nested_loops_both_derived(self):
        source = """
        void f() {
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 4; j++) { }
            }
        }
        """
        bounds = derive(source)
        assert len(bounds) == 2
        assert {b.hi for b in bounds.values()} == {3, 4}


class TestRefusals:
    def test_variable_limit_refused(self):
        assert derive(
            "void f(int n) {\n for (int i = 0; i < n; i++) { }\n }") == {}

    def test_index_modified_in_body(self):
        assert derive(
            "void f() {\n for (int i = 0; i < 10; i++) { i = 0; }\n }") == {}

    def test_index_incremented_in_body(self):
        assert derive(
            "void f() {\n for (int i = 0; i < 10; i++) { i++; }\n }") == {}

    def test_wrong_direction_refused(self):
        assert derive(
            "void f() {\n for (int i = 0; i > 10; i++) { }\n }") == {}

    def test_while_without_init_context_refused(self):
        # The counter's initialization is not the statement right
        # before the loop.
        assert derive(
            "void f(int n) {\n int i = 0;\n int pad = n;\n"
            " while (i < 4) i++;\n }") == {}

    def test_while_with_continue_refused(self):
        # continue could skip the counter step.
        assert derive("""
        void f(int n) {
            int i = 0;
            while (i < 8) {
                if (n > 2) continue;
                i++;
            }
        }""") == {}

    def test_while_with_two_steps_refused(self):
        assert derive("""
        void f() {
            int i = 0;
            while (i < 8) {
                i++;
                i++;
            }
        }""") == {}

    def test_while_variable_limit_refused(self):
        assert derive(
            "void f(int n) {\n int i = 0;\n while (i < n) i++;\n }") == {}

    def test_shadowed_index_refused(self):
        source = """
        void f() {
            for (int i = 0; i < 10; i++) {
                int i = 3;
                i = i + 1;
            }
        }
        """
        assert derive(source) == {}


class TestEarlyExit:
    def test_break_weakens_lower_bound(self):
        source = """
        int f(int n) {
            int i;
            for (i = 0; i < 10; i++)
                if (i == n) break;
            return i;
        }
        """
        bounds = derive(source)
        bound = next(iter(bounds.values()))
        assert (bound.lo, bound.hi, bound.exact) == (0, 10, False)

    def test_return_weakens_lower_bound(self):
        source = """
        int f(int n) {
            for (int i = 0; i < 10; i++)
                if (i == n) return i;
            return -1;
        }
        """
        bound = next(iter(derive(source).values()))
        assert not bound.exact and bound.lo == 0

    def test_inner_break_does_not_weaken_outer(self):
        source = """
        void f(int n) {
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 5; j++) {
                    if (j == n) break;
                }
            }
        }
        """
        bounds = derive(source)
        outer = bounds[("f", 3)]
        inner = bounds[("f", 4)]
        assert outer.exact
        assert not inner.exact

    def test_continue_keeps_exact(self):
        source = """
        void f(int n) {
            for (int i = 0; i < 6; i++) {
                if (i == n) continue;
            }
        }
        """
        assert next(iter(derive(source).values())).exact


class TestAnalysisIntegration:
    def test_auto_bound_then_estimate(self):
        source = """
        int data[16];
        int f() {
            int s = 0;
            for (int i = 0; i < 16; i++) s += data[i];
            return s;
        }
        """
        analysis = Analysis(source, entry="f")
        applied = analysis.auto_bound_loops()
        assert len(applied) == 1
        assert analysis.loops_needing_bounds() == []
        report = analysis.estimate()
        assert report.best == report.worst or report.best < report.worst

    def test_user_bounds_win(self):
        source = """
        int f() {
            int s = 0;
            for (int i = 0; i < 16; i++) s += i;
            return s;
        }
        """
        analysis = Analysis(source, entry="f")
        analysis.bound_loop(lo=16, hi=16)
        assert analysis.auto_bound_loops() == []

    def test_underivable_loops_still_reported(self):
        source = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < 4; i++) s += i;
            while (s < n) s++;
            return s;
        }
        """
        analysis = Analysis(source, entry="f")
        applied = analysis.auto_bound_loops()
        assert len(applied) == 1
        assert len(analysis.loops_needing_bounds()) == 1

    def test_matches_manual_bounds_on_benchmark(self):
        # matgen's five loops are all counted: auto bounds must give
        # the same estimate as the hand-written ones.
        from repro.programs import get_benchmark

        bench = get_benchmark("matgen")
        manual = bench.make_analysis(with_constraints=False).estimate()

        auto = Analysis(bench.program, entry="matgen")
        applied = auto.auto_bound_loops()
        assert len(applied) == 5
        assert auto.loops_needing_bounds() == []
        assert auto.estimate().interval == manual.interval

    def test_auto_bounds_stay_sound(self):
        from repro import measure_bounds
        from repro.programs import get_benchmark

        bench = get_benchmark("jpeg_fdct_islow")
        analysis = Analysis(bench.program, entry=bench.entry)
        analysis.auto_bound_loops()
        report = analysis.estimate()
        measured = measure_bounds(bench.program, bench.entry,
                                  bench.best_data, bench.worst_data)
        assert report.encloses(measured.interval)

"""Tests for CFG construction, dominance, loops and the call graph."""

import pytest

from repro.codegen import compile_source
from repro.cfg import (CallGraph, build_cfg, build_cfgs, find_loops,
                       immediate_dominators, loops_by_key, reverse_postorder)
from repro.sim import run_program

IF_ELSE = """
int f(int p) {
    int q;
    if (p)
        q = 1;
    else
        q = 2;
    return q;
}
"""

WHILE_LOOP = """
int f(int p) {
    int q;
    q = p;
    while (q < 10)
        q++;
    return q;
}
"""

CALLS = """
int total;
void store(int i) { total = total + i; }
void f() {
    int i; int n;
    i = 10;
    store(i);
    n = 2 * i;
    store(n);
}
"""


def cfg_of(source, name="f"):
    program = compile_source(source)
    return program, build_cfg(program, program.functions[name])


class TestStructure:
    def test_if_else_diamond_matches_paper_fig2(self):
        # Paper Fig. 2: 4 blocks, edges d1..d6.
        _, cfg = cfg_of(IF_ELSE)
        assert len(cfg.blocks) == 4
        d_edges = [e for e in cfg.edges if e.name.startswith("d")]
        assert len(d_edges) == 6
        # B1 branches to B2 (then) and B3 (else); both join in B4.
        assert sorted(cfg.successors(1)) == [2, 3]
        assert cfg.successors(2) == [4]
        assert cfg.successors(3) == [4]
        assert cfg.successors(4) == []
        assert len(cfg.exit_edges()) == 1

    def test_while_loop_matches_paper_fig3(self):
        # Paper Fig. 3: 4 blocks; B2 is the test, B3 the body, B4 exit.
        _, cfg = cfg_of(WHILE_LOOP)
        assert len(cfg.blocks) == 4
        assert cfg.successors(1) == [2]
        assert sorted(cfg.successors(2)) == [3, 4]
        assert cfg.successors(3) == [2]          # back edge
        assert cfg.successors(4) == []

    def test_entry_edge_is_d1(self):
        _, cfg = cfg_of(IF_ELSE)
        entry = cfg.entry_edge
        assert entry.name == "d1"
        assert entry.dst == cfg.entry_block == 1

    def test_call_edges_split_blocks_like_paper_fig4(self):
        program = compile_source(CALLS)
        cfg = build_cfg(program, program.functions["f"])
        f_edges = cfg.call_edges()
        assert [e.name for e in f_edges] == ["f1", "f2"]
        assert all(e.callee == "store" for e in f_edges)
        # Call sites end their blocks: f1 leaves B1, f2 leaves B2.
        assert f_edges[0].src == 1 and f_edges[0].dst == 2
        assert f_edges[1].src == 2 and f_edges[1].dst == 3

    def test_block_partition_covers_function(self):
        program, cfg = cfg_of(WHILE_LOOP)
        fn = program.functions["f"]
        covered = sorted(
            (b.start, b.end) for b in cfg.blocks.values())
        assert covered[0][0] == fn.entry_index
        assert covered[-1][1] == fn.entry_index + len(fn.instrs)
        for (s1, e1), (s2, e2) in zip(covered, covered[1:]):
            assert e1 == s2

    def test_block_of_instruction(self):
        _, cfg = cfg_of(IF_ELSE)
        for block in cfg.blocks.values():
            for idx in range(block.start, block.end):
                assert cfg.block_of_instruction(idx).id == block.id

    def test_block_at_line(self):
        _, cfg = cfg_of(WHILE_LOOP)
        # Line 5 is `while (q < 10)`.
        blocks = cfg.block_at_line(5)
        assert blocks, "while line must map to a block"

    def test_to_networkx(self):
        _, cfg = cfg_of(IF_ELSE)
        graph = cfg.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.has_edge(1, 2) and graph.has_edge(3, 4)

    def test_flow_conservation_observed(self):
        # Simulated block counts satisfy in-flow = count = out-flow.
        program, cfg = cfg_of(WHILE_LOOP)
        result = run_program(program, "f", 3)
        counts = result.block_counts(cfg)
        # Header executes 8 times (q=3..10), body 7, pre/post once.
        assert counts[1] == 1
        assert counts[2] == 8
        assert counts[3] == 7
        assert counts[4] == 1


class TestDominance:
    def test_diamond_dominators(self):
        _, cfg = cfg_of(IF_ELSE)
        idom = immediate_dominators(cfg)
        assert idom[1] == 1
        assert idom[2] == 1
        assert idom[3] == 1
        assert idom[4] == 1     # join dominated by the test, not a branch

    def test_loop_dominators(self):
        _, cfg = cfg_of(WHILE_LOOP)
        idom = immediate_dominators(cfg)
        assert idom[2] == 1
        assert idom[3] == 2
        assert idom[4] == 2

    def test_reverse_postorder_starts_at_entry(self):
        _, cfg = cfg_of(WHILE_LOOP)
        order = reverse_postorder(cfg)
        assert order[0] == cfg.entry_block
        assert set(order) == set(cfg.blocks)


class TestLoops:
    def test_while_loop_found(self):
        _, cfg = cfg_of(WHILE_LOOP)
        loops = find_loops(cfg)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == 2
        assert loop.blocks == {2, 3}
        assert len(loop.back_edges) == 1
        assert len(loop.entry_edges) == 1

    def test_nested_loops(self):
        src = """
        int f(int n) {
            int c = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    c++;
            return c;
        }
        """
        _, cfg = cfg_of(src)
        loops = find_loops(cfg)
        assert len(loops) == 2
        outer, inner = sorted(loops, key=lambda l: len(l.blocks),
                              reverse=True)
        assert inner.blocks < outer.blocks

    def test_continue_merges_back_edges(self):
        src = """
        int f(int n) {
            int s = 0;
            int i = 0;
            while (i < n) {
                i++;
                if (i % 2) continue;
                s += i;
            }
            return s;
        }
        """
        _, cfg = cfg_of(src)
        loops = find_loops(cfg)
        assert len(loops) == 1
        assert len(loops[0].back_edges) == 2

    def test_do_while_loop(self):
        src = "int f() { int i = 0; do i++; while (i < 3); return i; }"
        _, cfg = cfg_of(src)
        loops = find_loops(cfg)
        assert len(loops) == 1

    def test_break_leaves_extra_exit(self):
        src = """
        int f(int n) {
            int i;
            for (i = 0; i < n; i++)
                if (i == 3) break;
            return i;
        }
        """
        _, cfg = cfg_of(src)
        loops = find_loops(cfg)
        assert len(loops) == 1

    def test_loop_key_uses_source_line(self):
        _, cfg = cfg_of(WHILE_LOOP)
        loop = find_loops(cfg)[0]
        assert loop.key == ("f", 5)

    def test_loops_by_key_across_functions(self):
        src = """
        int a() { int s = 0; for (int i = 0; i < 3; i++) s++; return s; }
        int b() { int s = 0; while (s < 5) s++; return s; }
        """
        program = compile_source(src)
        table = loops_by_key(build_cfgs(program))
        assert len(table) == 2
        assert {key[0] for key in table} == {"a", "b"}


class TestCallGraph:
    def test_sites_and_callers(self):
        program = compile_source(CALLS)
        graph = CallGraph(build_cfgs(program))
        assert graph.callees("f") == {"store"}
        callers = graph.callers_of("store")
        assert [c for c, _ in callers] == ["f", "f"]
        assert [e.name for _, e in callers] == ["f1", "f2"]

    def test_reachable_topological(self):
        src = """
        int c() { return 1; }
        int b() { return c(); }
        int a() { return b() + c(); }
        """
        program = compile_source(src)
        graph = CallGraph(build_cfgs(program))
        order = graph.reachable_from("a")
        assert order[0] == "a"
        assert set(order) == {"a", "b", "c"}
        assert order.index("b") < order.index("c") or "c" in order

    def test_unreachable_excluded(self):
        src = """
        int lonely() { return 9; }
        int a() { return 1; }
        """
        program = compile_source(src)
        graph = CallGraph(build_cfgs(program))
        assert graph.reachable_from("a") == ["a"]

"""Chaos layer: schedules, the injector, seam behavior, graceful
degradation, circuit breakers and the soundness invariants harness."""

import json
import socket
import threading
import time

import pytest

from repro.chaos import (FaultPlan, FaultRule, FaultScheduleError,
                         InjectedFault, inject, verify_journal)
from repro.chaos.inject import Injector, NULL_INJECTOR, POINTS
from repro.engine.cache import ResultCache
from repro.service import (CircuitBreaker, JobJournal, JobQueue,
                           JobRecord, JobSpec, ServiceClient,
                           ServiceDegraded, ServiceThread,
                           ServiceTimeout, ServiceUnavailable)


@pytest.fixture(autouse=True)
def _pristine_injector():
    """No test leaks an installed injector into the next."""
    yield
    inject.reset()


def _src(name, **extra):
    return {"name": name, "source": "int f() { return 1; }",
            "entry": "f", **extra}


def _spec_dict(name):
    return JobSpec.from_dict(_src(name)).to_dict()


# ======================================================================
# Schedule grammar
# ======================================================================
class TestFaultPlan:
    def test_parse_round_trips_canonical_text(self):
        text = ("seed=42,journal.enospc=3,worker.kill=1@0.5,"
                "peer.latency=*~0.05")
        plan = FaultPlan.parse(text)
        assert plan.seed == 42
        assert FaultPlan.parse(plan.to_text()) == plan
        by_point = {rule.point: rule for rule in plan.rules}
        assert by_point["journal.enospc"].count == 3
        assert by_point["worker.kill"].probability == 0.5
        assert by_point["peer.latency"].count is None
        assert by_point["peer.latency"].seconds == 0.05

    @pytest.mark.parametrize("bad", [
        "journal.enospc",                 # not NAME=VALUE
        "seed=x",                         # non-integer seed
        "no.such.point=1",                # unknown point
        "worker.kill=1,worker.kill=2",    # duplicate point
        "worker.kill=1@1.5",              # probability out of range
        "worker.kill=-1",                 # negative count
        "worker.kill=maybe",              # non-integer count
        "worker.hang=1~soon",             # non-numeric seconds
    ])
    def test_bad_schedules_are_rejected(self, bad):
        with pytest.raises(FaultScheduleError):
            FaultPlan.parse(bad)

    def test_every_point_is_parseable(self):
        for point in POINTS:
            plan = FaultPlan.parse(f"seed=1,{point}=1")
            assert plan.rules[0].point == point


# ======================================================================
# The injector
# ======================================================================
class TestInjector:
    def test_charges_are_consumed(self):
        injector = Injector(FaultPlan.parse("seed=1,worker.kill=2"))
        with pytest.raises(InjectedFault):
            injector.fire("worker.kill")
        with pytest.raises(InjectedFault):
            injector.fire("worker.kill")
        injector.fire("worker.kill")      # budget exhausted: no-op
        assert injector.counts() == {"worker.kill": 2}

    def test_unlisted_points_never_fire(self):
        injector = Injector(FaultPlan.parse("seed=1,worker.kill=1"))
        assert injector.trip("journal.enospc") is False
        assert injector.delay("worker.hang") == 0.0
        assert injector.budget("solver.budget", 5.0) == 5.0

    def test_probability_sequence_is_seed_deterministic(self):
        def sequence(seed):
            injector = Injector(FaultPlan.parse(
                f"seed={seed},cache.read=*@0.5"))
            return [injector.trip("cache.read") for _ in range(64)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)   # astronomically unlikely
        assert any(sequence(7)) and not all(sequence(7))

    def test_points_draw_independent_streams(self):
        """Traffic at one point must not shift another's decisions."""
        lone = Injector(FaultPlan.parse(
            "seed=3,cache.read=*@0.5,journal.write=*@0.5"))
        noisy = Injector(FaultPlan.parse(
            "seed=3,cache.read=*@0.5,journal.write=*@0.5"))
        for _ in range(50):                 # interleaved arrivals
            noisy.trip("journal.write")
        assert [lone.trip("cache.read") for _ in range(20)] \
            == [noisy.trip("cache.read") for _ in range(20)]

    def test_injected_fault_carries_real_errno(self):
        import errno

        injector = Injector(FaultPlan.parse("seed=1,journal.enospc=1"))
        with pytest.raises(InjectedFault) as excinfo:
            injector.fire("journal.enospc")
        assert excinfo.value.errno == errno.ENOSPC
        assert isinstance(excinfo.value, OSError)

    def test_free_functions_follow_install_and_reset(self):
        assert inject.active() is NULL_INJECTOR
        assert inject.trip("worker.kill") is False
        inject.install("seed=1,worker.kill=1")
        with pytest.raises(InjectedFault):
            inject.fire("worker.kill")
        inject.reset()
        inject.fire("worker.kill")          # null again: no-op
        assert inject.active() is NULL_INJECTOR

    def test_corrupt_is_a_pure_function_of_the_text(self):
        injector = Injector(FaultPlan.parse("seed=1,cache.read=2"))
        text = json.dumps({"kind": "set", "result": [1, 2, 3]})
        first = injector.corrupt("cache.read", text)
        assert first != text
        assert injector.corrupt("cache.read", text) == first
        assert injector.corrupt("cache.read", text) == text  # exhausted

    def test_attach_publishes_counter_and_event(self):
        from repro.obs import EventBus, MetricsRegistry

        bus = EventBus()
        registry = MetricsRegistry()
        subscription = bus.subscribe()
        injector = Injector(FaultPlan.parse("seed=1,worker.kill=1"))
        injector.attach(bus=bus, registry=registry)
        with pytest.raises(InjectedFault):
            injector.fire("worker.kill")
        assert registry.value("chaos.worker.kill") == 1
        fault = [e for e in subscription.pop_all()
                 if e["type"] == "chaos_fault"]
        assert fault and fault[0]["point"] == "worker.kill"


# ======================================================================
# Cache integrity: hash verification and quarantine
# ======================================================================
def _set_result(index=0, worst=10.0, best=2.0):
    from repro.analysis.report import SetResult
    from repro.ilp import Status

    return SetResult(index=index, status=Status.OPTIMAL,
                     worst=worst, best=best)


class TestCacheQuarantine:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_set("k1", _set_result())
        # Flip one byte on disk, as a bad sector would.
        (entry,) = list(tmp_path.glob("??/*.json"))
        data = bytearray(entry.read_bytes())
        data[len(data) // 2] ^= 0xFF
        entry.write_bytes(bytes(data))

        assert cache.get_set("k1") is None
        assert cache.quarantined == 1
        assert not entry.exists()
        assert list((tmp_path / "quarantine").iterdir())
        # The slot is free again: a recompute repopulates it.
        cache.put_set("k1", _set_result())
        loaded = cache.get_set("k1")
        assert (loaded.worst, loaded.best) == (10.0, 2.0)

    def test_injected_bitflip_is_caught_by_the_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_set("k1", _set_result())
        inject.install("seed=1,cache.read=1")
        assert cache.get_set("k1") is None          # corrupted read
        assert cache.quarantined == 1
        cache.put_set("k2", _set_result(worst=3.0, best=1.0))
        loaded = cache.get_set("k2")                # charge spent
        assert (loaded.worst, loaded.best) == (3.0, 1.0)

    def test_legacy_unsealed_entries_still_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_set("k1", _set_result())
        (entry,) = list(tmp_path.glob("??/*.json"))
        payload = json.loads(entry.read_text())
        del payload["sha256"]                       # pre-digest format
        entry.write_text(json.dumps(payload))
        loaded = cache.get_set("k1")
        assert (loaded.worst, loaded.best) == (10.0, 2.0)

    def test_quarantine_is_excluded_from_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_set("k1", _set_result())
        cache.put_set("k2", _set_result(index=1))
        inject.install("seed=1,cache.read=1")
        cache.get_set("k1")
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.quarantined == 1
        assert cache.clear() == 1                   # live entry only
        assert list((tmp_path / "quarantine").iterdir())


# ======================================================================
# Journal: failed appends, repair, probe recovery
# ======================================================================
class TestJournalUnderFaults:
    def test_failed_append_returns_none_and_sets_last_error(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        inject.install("seed=1,journal.enospc=1")
        assert journal.append("submit", id="j000001",
                              spec=_spec_dict("a"), tenant=None) is None
        assert journal.last_error is not None
        assert journal.write_errors == 1
        journal.close()
        # The failed frame left no trace: replay sees an empty log.
        assert JobJournal(tmp_path).open().jobs == {}

    def test_probe_recovers_and_later_appends_survive(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        inject.install("seed=1,journal.enospc=1")
        assert journal.append("submit", id="j000001",
                              spec=_spec_dict("a"), tenant=None) is None
        assert journal.probe() is True              # charge spent
        assert journal.last_error is None
        assert journal.append("submit", id="j000002",
                              spec=_spec_dict("b"), tenant=None) is not None
        journal.close()
        state = JobJournal(tmp_path).open()
        assert sorted(state.jobs) == ["j000002"]

    def test_torn_frame_is_repaired_in_place(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        journal.append("submit", id="j000001",
                       spec=_spec_dict("a"), tenant=None)
        inject.install("seed=1,journal.torn=1")
        assert journal.append("submit", id="j000002",
                              spec=_spec_dict("b"), tenant=None) is None
        # The half-written frame was truncated away: the next append
        # lands on a clean boundary and replay sees no torn tail.
        assert journal.append("submit", id="j000003",
                              spec=_spec_dict("c"), tenant=None) is not None
        journal.close()
        state = JobJournal(tmp_path).open()
        assert not state.tail_dropped
        assert sorted(state.jobs) == ["j000001", "j000003"]

    def test_open_truncates_a_crash_torn_tail(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        journal.append("submit", id="j000001",
                       spec=_spec_dict("a"), tenant=None)
        journal.append("submit", id="j000002",
                       spec=_spec_dict("b"), tenant=None)
        journal.close()
        wal = tmp_path / "journal.wal"
        intact = wal.stat().st_size
        wal.write_bytes(wal.read_bytes() + b"\x13\x00\x00\x00garbage")

        journal = JobJournal(tmp_path)
        journal.open()
        # The torn bytes are gone from disk, not merely skipped: an
        # append after recovery extends a well-formed log.
        journal.append("submit", id="j000003",
                       spec=_spec_dict("c"), tenant=None)
        journal.close()
        assert wal.stat().st_size > intact
        state = JobJournal(tmp_path).open()
        assert not state.tail_dropped
        assert sorted(state.jobs) == ["j000001", "j000002", "j000003"]

    def test_open_removes_stale_snapshot_tmp(self, tmp_path):
        stale = tmp_path / "snapshot.json.tmp"
        tmp_path.mkdir(exist_ok=True)
        stale.write_text('{"schema": 1, "jo')
        journal = JobJournal(tmp_path)
        journal.open()
        journal.close()
        assert not stale.exists()

    def test_failed_snapshot_write_cleans_up_tmp(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        journal.append("submit", id="j000001",
                       spec=_spec_dict("a"), tenant=None)
        real_replace = __import__("os").replace

        def boom(src, dst):
            raise OSError(28, "no space")

        __import__("os").replace = boom
        try:
            with pytest.raises(OSError):
                journal.compact({"j000001": {"state": "queued",
                                             "spec": _spec_dict("a")}})
        finally:
            __import__("os").replace = real_replace
        assert not (tmp_path / "snapshot.json.tmp").exists()
        journal.close()


class TestQueueRemove:
    def _record(self, name, priority=0):
        return JobRecord(id=name,
                         spec=JobSpec.from_dict(
                             _src(name, priority=priority)))

    def test_remove_withdraws_only_the_target(self):
        queue = JobQueue()
        records = [self._record(f"j{n}") for n in range(4)]
        for record in records:
            queue.push(record)
        assert queue.remove(records[1]) is True
        assert queue.remove(records[1]) is False    # already gone
        popped = []
        while queue.depth:
            popped.append(queue.pop_nowait().id)
        assert popped == ["j0", "j2", "j3"]         # order preserved

    def test_remove_keeps_heap_invariant_under_priorities(self):
        queue = JobQueue()
        records = [self._record(f"j{n}", priority=n % 3)
                   for n in range(9)]
        for record in records:
            queue.push(record)
        queue.remove(records[4])
        priorities = []
        while queue.depth:
            priorities.append(queue.pop_nowait().spec.priority)
        assert priorities == sorted(priorities, reverse=True)


# ======================================================================
# Client timeouts
# ======================================================================
class _HungServer(threading.Thread):
    """Accepts a connection, then never answers."""

    def __init__(self):
        super().__init__(daemon=True)
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(1)
        self.port = self.sock.getsockname()[1]
        self._halt = threading.Event()

    def run(self):
        self.sock.settimeout(0.1)
        conns = []
        while not self._halt.is_set():
            try:
                conn, _ = self.sock.accept()
                conns.append(conn)          # hold it open, say nothing
            except socket.timeout:
                continue
        for conn in conns:
            conn.close()
        self.sock.close()

    def stop(self):
        self._halt.set()
        self.join()


class TestServiceTimeout:
    def test_hung_server_raises_typed_timeout(self):
        server = _HungServer()
        server.start()
        try:
            client = ServiceClient(port=server.port, timeout=0.2)
            clock = time.monotonic()
            with pytest.raises(ServiceTimeout) as excinfo:
                client.healthz()
            elapsed = time.monotonic() - clock
            # One timeout, not two: no stale-reuse retry for a hang.
            assert elapsed < 1.0
            assert excinfo.value.retry_after > 0
            assert isinstance(excinfo.value, ServiceUnavailable)
        finally:
            server.stop()

    def test_submit_retry_retries_timeouts(self):
        calls = []

        class FlakyClient(ServiceClient):
            def submit(self, spec, **kwargs):
                calls.append(spec)
                if len(calls) < 3:
                    raise ServiceTimeout("hung")
                return {"id": "j000001", "state": "queued"}

        client = FlakyClient()
        sleeps = []
        result = client.submit_retry(
            {"benchmark": "check_data"}, attempts=5,
            _sleep=sleeps.append, _random=lambda lo, hi: hi)
        assert result["id"] == "j000001"
        assert len(calls) == 3
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]        # backoff grows

    def test_submit_retry_exhaustion_reraises(self):
        class DeadClient(ServiceClient):
            def submit(self, spec, **kwargs):
                raise ServiceTimeout("hung")

        with pytest.raises(ServiceTimeout):
            DeadClient().submit_retry({"benchmark": "x"}, attempts=2,
                                      _sleep=lambda s: None)


# ======================================================================
# Circuit breakers
# ======================================================================
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        for _ in range(2):
            assert breaker.allow()
            breaker.record(ok=False)
        assert breaker.state == "closed"    # under threshold
        breaker.record(ok=False)
        assert breaker.state == "open"
        assert breaker.allow() is False

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(threshold=3, cooldown=60.0)
        breaker.record(ok=False)
        breaker.record(ok=False)
        breaker.record(ok=True)
        breaker.record(ok=False)
        breaker.record(ok=False)
        assert breaker.state == "closed"    # run was broken by the ok

    def test_half_open_probe_closes_or_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=0.05)
        breaker.record(ok=False)
        assert breaker.state == "open"
        assert breaker.allow() is False
        time.sleep(0.06)
        assert breaker.allow() is True      # the probe
        assert breaker.state == "half-open"
        breaker.record(ok=False)
        assert breaker.state == "open"      # probe failed: re-open
        time.sleep(0.06)
        assert breaker.allow() is True
        breaker.record(ok=True)
        assert breaker.state == "closed"
        assert breaker.allow() is True


# ======================================================================
# Graceful degradation end to end
# ======================================================================
class TestDegradedMode:
    def test_journal_failure_degrades_then_recovers(self, tmp_path):
        plan = FaultPlan.parse("seed=1,journal.enospc=2")
        with ServiceThread(workers=1, executor="thread",
                           journal_dir=tmp_path / "journal",
                           cache_dir=tmp_path / "cache",
                           chaos=plan) as handle:
            client = ServiceClient(port=handle.port)
            # First charge fails the submit frame: 503 + rollback.
            with pytest.raises(ServiceUnavailable):
                client.submit(_src("a"))
            health = client.healthz()
            assert health["status"] == "degraded"
            assert "journal" in health["degraded_reason"]
            # Housekeeping probes burn the second charge, then the
            # journal heals; automatic recovery follows.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.healthz()["status"] == "ok":
                    break
                time.sleep(0.05)
            assert client.healthz()["status"] == "ok"
            record = client.wait(client.submit(_src("b"))["id"],
                                 timeout=30)
            assert record["state"] == "done"
        # Nothing half-admitted leaked into the journal.
        report = verify_journal(tmp_path / "journal")
        assert report.ok, report.render()

    def test_degraded_serves_finished_bounds_read_only(self, tmp_path):
        plan = FaultPlan.parse("seed=1,journal.enospc=1000000")
        with ServiceThread(workers=1, executor="thread",
                           journal_dir=tmp_path / "journal",
                           cache_dir=tmp_path / "cache",
                           chaos=plan) as handle:
            client = ServiceClient(port=handle.port)
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.submit(_src("a"))
            assert "read-only" in str(excinfo.value)
            # Reads keep working while degraded.
            assert client.healthz()["status"] == "degraded"
            snapshot = client.metricz()
            assert snapshot["service.degraded"]["value"] == 1
            assert snapshot["service.degraded.entered"]["value"] == 1

    def test_degraded_503_is_typed_and_carries_retry_after(
            self, tmp_path):
        plan = FaultPlan.parse("seed=1,journal.enospc=1000000")
        with ServiceThread(workers=1, executor="thread",
                           journal_dir=tmp_path / "journal",
                           cache_dir=tmp_path / "cache",
                           chaos=plan) as handle:
            client = ServiceClient(port=handle.port)
            with pytest.raises(ServiceDegraded) as excinfo:
                client.submit(_src("a"))
            # Retryable, with the server's Retry-After hint — unlike
            # the draining 503, which stays a bare ServiceUnavailable.
            assert excinfo.value.retry_after == 2.0

    def test_submit_retry_rides_through_degraded_mode(self, tmp_path):
        plan = FaultPlan.parse("seed=1,journal.enospc=2")
        with ServiceThread(workers=1, executor="thread",
                           journal_dir=tmp_path / "journal",
                           cache_dir=tmp_path / "cache",
                           chaos=plan) as handle:
            client = ServiceClient(port=handle.port)
            # First attempt eats the 503; housekeeping probes burn the
            # second charge (~0.25s cadence) and recover the journal,
            # so a later backoff attempt is admitted normally.
            ticket = client.submit_retry(_src("a"),
                                         _random=lambda a, b: 0.3)
            record = client.wait(ticket["id"], timeout=60)
            assert record["state"] == "done"
        report = verify_journal(tmp_path / "journal")
        assert report.ok, report.render()

    def test_worker_kill_is_retried_transparently(self, tmp_path):
        plan = FaultPlan.parse("seed=1,worker.kill=1")
        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache",
                           chaos=plan) as handle:
            client = ServiceClient(port=handle.port)
            record = client.wait(client.submit(_src("a"))["id"],
                                 timeout=60)
            assert record["state"] == "done"
            snapshot = client.metricz()
            assert snapshot["service.retries"]["value"] >= 1
            assert snapshot["chaos.worker.kill"]["value"] == 1


# ======================================================================
# Invariants harness
# ======================================================================
class TestInvariants:
    def _journal_with(self, tmp_path, frames):
        journal = JobJournal(tmp_path)
        journal.open()
        for kind, payload in frames:
            journal.append(kind, **payload)
        journal.close()

    def test_clean_journal_passes(self, tmp_path):
        self._journal_with(tmp_path, [
            ("submit", {"id": "j000001", "spec": _spec_dict("a"),
                        "tenant": None}),
            ("start", {"id": "j000001"}),
            ("fail", {"id": "j000001", "status": "failed",
                      "error": "boom"}),
        ])
        report = verify_journal(tmp_path)
        assert report.ok
        assert report.jobs == 1

    def test_lost_job_is_flagged(self, tmp_path):
        self._journal_with(tmp_path, [
            ("submit", {"id": "j000001", "spec": _spec_dict("a"),
                        "tenant": None}),
            ("start", {"id": "j000001"}),
        ])
        report = verify_journal(tmp_path)
        assert not report.ok
        assert report.violations[0].kind == "lost"
        assert verify_journal(tmp_path, require_terminal=False).ok

    def test_duplicate_submit_is_flagged(self, tmp_path):
        self._journal_with(tmp_path, [
            ("submit", {"id": "j000001", "spec": _spec_dict("a"),
                        "tenant": None}),
            ("submit", {"id": "j000001", "spec": _spec_dict("a"),
                        "tenant": None}),
            ("fail", {"id": "j000001", "status": "failed",
                      "error": "x"}),
        ])
        report = verify_journal(tmp_path)
        assert any(v.kind == "duplicate" for v in report.violations)

    def test_orphan_frame_is_flagged(self, tmp_path):
        self._journal_with(tmp_path, [
            ("start", {"id": "j000009"}),
        ])
        report = verify_journal(tmp_path, require_terminal=False)
        assert any(v.kind == "orphan" for v in report.violations)

    def test_divergent_terminal_frames_are_flagged(self, tmp_path):
        self._journal_with(tmp_path, [
            ("submit", {"id": "j000001", "spec": _spec_dict("a"),
                        "tenant": None}),
            ("complete", {"id": "j000001", "status": "ok",
                          "cache_hit": False, "report": None}),
            ("fail", {"id": "j000001", "status": "failed",
                      "error": "late"}),
        ])
        report = verify_journal(tmp_path)
        assert any(v.kind == "divergent" for v in report.violations)

    def test_agreeing_duplicate_terminals_are_allowed(self, tmp_path):
        # An expired lease can legitimately complete twice — with the
        # bit-identical result, thanks to the idempotent engine.
        self._journal_with(tmp_path, [
            ("submit", {"id": "j000001", "spec": _spec_dict("a"),
                        "tenant": None}),
            ("complete", {"id": "j000001", "status": "ok",
                          "cache_hit": False, "report": None}),
            ("complete", {"id": "j000001", "status": "ok",
                          "cache_hit": False, "report": None}),
        ])
        report = verify_journal(tmp_path, serial=False,
                                witnesses=False)
        assert report.ok, report.render()

    def test_quota_breach_is_flagged(self, tmp_path):
        tenants = tmp_path / "tenants.json"
        tenants.write_text(json.dumps(
            {"ci": {"key": "s3cret", "max_queued": 1}}))
        journal_dir = tmp_path / "journal"
        self._journal_with(journal_dir, [
            ("submit", {"id": "j000001", "spec": _spec_dict("a"),
                        "tenant": "ci"}),
            ("submit", {"id": "j000002", "spec": _spec_dict("b"),
                        "tenant": "ci"}),
        ])
        report = verify_journal(journal_dir, tenants=tenants,
                                require_terminal=False)
        assert any(v.kind == "quota" for v in report.violations)

    def test_tampered_bound_is_caught_by_serial_resolve(self, tmp_path):
        # Produce a genuine journal, then forge the worst bound.
        with ServiceThread(workers=1, executor="thread",
                           journal_dir=tmp_path / "journal",
                           cache_dir=tmp_path / "cache") as handle:
            client = ServiceClient(port=handle.port)
            client.wait(client.submit(
                {"benchmark": "check_data"})["id"], timeout=60)
        journal_dir = tmp_path / "journal"
        assert verify_journal(journal_dir).ok
        snapshot = journal_dir / "snapshot.json"
        data = json.loads(snapshot.read_text())
        (job,) = data["jobs"].values()
        job["report"]["worst"] -= 1          # an unsound "bound"
        snapshot.write_text(json.dumps(data))
        report = verify_journal(journal_dir)
        assert any(v.kind == "bound" for v in report.violations)

    def test_tampered_witness_is_caught(self, tmp_path):
        with ServiceThread(workers=1, executor="thread",
                           journal_dir=tmp_path / "journal",
                           cache_dir=tmp_path / "cache") as handle:
            client = ServiceClient(port=handle.port)
            client.wait(client.submit(
                {"benchmark": "check_data"})["id"], timeout=60)
        journal_dir = tmp_path / "journal"
        snapshot = journal_dir / "snapshot.json"
        data = json.loads(snapshot.read_text())
        (job,) = data["jobs"].values()
        counts = job["report"]["set_results"][0]["worst_counts"]
        variable = next(iter(counts))
        counts[variable] += 1                # no longer a solution
        snapshot.write_text(json.dumps(data))
        report = verify_journal(journal_dir, serial=False)
        assert any(v.kind == "witness" for v in report.violations)

    def test_report_renders_and_serializes(self, tmp_path):
        self._journal_with(tmp_path, [
            ("submit", {"id": "j000001", "spec": _spec_dict("a"),
                        "tenant": None}),
        ])
        report = verify_journal(tmp_path)
        text = report.render()
        assert "violation" in text
        data = report.to_dict()
        assert data["ok"] is False
        assert data["violations"][0]["kind"] == "lost"


# ======================================================================
# Same seed, same faults: the replayability contract end to end
# ======================================================================
class TestReplayability:
    def test_same_plan_fires_the_same_sequence(self, tmp_path):
        def run(label):
            inject.install("seed=11,journal.enospc=2,cache.read=1")
            journal = JobJournal(tmp_path / label)
            journal.open()
            outcomes = []
            for n in range(5):
                frame = journal.append("submit", id=f"j{n:06d}",
                                       spec=_spec_dict(f"x{n}"),
                                       tenant=None)
                outcomes.append(frame is not None)
            journal.close()
            counts = inject.active().counts()
            inject.reset()
            return outcomes, counts

        first = run("a")
        second = run("b")
        assert first == second
        assert first[1] == {"journal.enospc": 2}

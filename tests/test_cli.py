"""Tests for the command-line front end."""

import pytest

from repro.cli import main

PROGRAM = """
const int N = 8;
int data[8];

int total() {
    int s = 0;
    for (int i = 0; i < N; i++)
        s += data[i];
    return s;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


class TestAnalyze:
    def test_with_explicit_bound(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "total",
                     "--bound", "8:8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cycles for total" in out
        assert "first relaxation integral: True" in out

    def test_auto_bounds(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "total",
                     "--auto-bounds"])
        out = capsys.readouterr().out
        assert code == 0
        assert "auto bound: total() line" in out
        assert "[8, 8] (exact)" in out

    def test_missing_bound_reports_loops(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "total"])
        err = capsys.readouterr().err
        assert code == 2
        assert "loops still needing --bound" in err

    def test_bound_with_function_and_line(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "total",
                     "--bound", "total:7:8:8"])
        assert code == 0

    def test_constraint_flag(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "total",
                     "--bound", "0:8", "--constraint", "x1 = 1"])
        assert code == 0
        assert "sets: 1 solved" in capsys.readouterr().out

    def test_show_counts(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "total",
                     "--bound", "8:8", "--show-counts"])
        out = capsys.readouterr().out
        assert code == 0
        assert "total::x1 = 1" in out

    def test_machine_selection(self, source_file, capsys):
        main(["analyze", source_file, "--entry", "total",
              "--bound", "8:8", "--machine", "dsp3210"])
        assert "DSP3210" in capsys.readouterr().out

    def test_bad_entry_is_reported(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "nope",
                     "--bound", "8:8"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_bound_spec(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "total",
                     "--bound", "1:2:3:4:5"])
        assert code == 1

    def test_cache_split_flag(self, source_file, capsys):
        code = main(["analyze", source_file, "--entry", "total",
                     "--bound", "8:8", "--cache-split"])
        assert code == 0


class TestRun:
    def test_run_with_globals(self, source_file, capsys):
        code = main(["run", source_file, "--entry", "total",
                     "--set", "data=1,2,3,4,5,6,7,8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "return value: 36" in out

    def test_run_with_cycles(self, source_file, capsys):
        code = main(["run", source_file, "--entry", "total", "--cycles"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cycles (i960KB):" in out

    def test_run_with_args(self, tmp_path, capsys):
        path = tmp_path / "p.c"
        path.write_text("int dbl(int x) { return 2 * x; }")
        code = main(["run", str(path), "--entry", "dbl", "--arg", "21"])
        assert code == 0
        assert "return value: 42" in capsys.readouterr().out

    def test_bad_set_spec(self, source_file, capsys):
        code = main(["run", source_file, "--entry", "total",
                     "--set", "data"])
        assert code == 1


class TestExplainAgainst:
    def _save_explanation(self, tmp_path, capsys) -> str:
        assert main(["explain", "check_data", "--json"]) == 0
        saved = tmp_path / "before.json"
        saved.write_text(capsys.readouterr().out)
        return str(saved)

    def test_self_diff_reports_no_differences(self, tmp_path, capsys):
        saved = self._save_explanation(tmp_path, capsys)
        code = main(["explain", "check_data", "--against", saved])
        out = capsys.readouterr().out
        assert code == 0
        assert "(no differences)" in out
        assert "worst-case bound:" in out

    def test_against_json_delta(self, tmp_path, capsys):
        import json

        saved = self._save_explanation(tmp_path, capsys)
        code = main(["explain", "check_data", "--against", saved,
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["unchanged"] is True
        assert payload["bound_delta"] == 0

    def test_against_cross_machine_shows_delta(self, tmp_path, capsys):
        saved = self._save_explanation(tmp_path, capsys)
        code = main(["explain", "check_data", "--against", saved,
                     "--machine", "nocache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "machine differs" in out
        assert "(no differences)" not in out

    def test_against_rejects_non_explain_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        code = main(["explain", "check_data", "--against", str(bogus)])
        assert code == 1
        assert "explain" in capsys.readouterr().err


class TestServiceCli:
    def test_engine_stats_reports_evictions(self, tmp_path, capsys):
        code = main(["engine", "stats", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "evictions: 0 (lifetime)" in out

    def test_submit_round_trip(self, capsys):
        from repro.service import ServiceThread

        with ServiceThread(workers=1, executor="thread") as handle:
            code = main(["submit", "check_data",
                         "--port", str(handle.port)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("check_data: [")

    def test_submit_no_wait_prints_ids(self, capsys):
        from repro.service import ServiceThread

        with ServiceThread(workers=1, executor="thread") as handle:
            code = main(["submit", "check_data", "--no-wait",
                         "--port", str(handle.port)])
            out = capsys.readouterr().out
            assert code == 0
            assert "check_data: submitted as j" in out

    def test_submit_unreachable_service_fails_cleanly(self, capsys):
        code = main(["submit", "check_data", "--port", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestOtherCommands:
    def test_annotate(self, source_file, capsys):
        code = main(["annotate", source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "x1" in out and "total()" in out

    def test_annotate_subset(self, source_file, capsys):
        code = main(["annotate", source_file, "--functions", "total"])
        assert code == 0

    def test_disasm(self, source_file, capsys):
        code = main(["disasm", source_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "total:" in out and "ret" in out

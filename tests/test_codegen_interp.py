"""End-to-end tests: MiniC source -> IR960 -> interpreter result.

These validate the compiler and interpreter together by checking
functional results of compiled programs against the obvious Python
semantics.
"""

import pytest

from repro.codegen import Op, compile_source
from repro.sim import run_program


def run(source, entry, *args, globals_init=None):
    program = compile_source(source)
    return run_program(program, entry, *args,
                       globals_init=globals_init).value


class TestArithmetic:
    def test_constants_and_return(self):
        assert run("int f() { return 41 + 1; }", "f") == 42

    def test_parameters(self):
        assert run("int add(int a, int b) { return a + b; }", "add", 3, 4) == 7

    def test_precedence(self):
        assert run("int f() { return 2 + 3 * 4 - 1; }", "f") == 13

    def test_division_truncates_toward_zero(self):
        src = "int f(int a, int b) { return a / b; }"
        assert run(src, "f", 7, 2) == 3
        assert run(src, "f", -7, 2) == -3
        assert run(src, "f", 7, -2) == -3

    def test_remainder_sign(self):
        src = "int f(int a, int b) { return a % b; }"
        assert run(src, "f", 7, 3) == 1
        assert run(src, "f", -7, 3) == -1

    def test_bitwise(self):
        assert run("int f() { return (12 & 10) | (1 ^ 3); }", "f") == 10
        assert run("int f() { return ~0; }", "f") == -1

    def test_shifts(self):
        assert run("int f() { return 3 << 4; }", "f") == 48
        assert run("int f() { return -16 >> 2; }", "f") == -4

    def test_unary_minus(self):
        assert run("int f(int a) { return -a; }", "f", 5) == -5

    def test_float_arithmetic(self):
        assert run("float f() { return 1.5 * 4.0; }", "f") == pytest.approx(6.0)

    def test_mixed_promotion(self):
        assert run("float f(int a) { return a / 2.0; }", "f", 7) == \
            pytest.approx(3.5)

    def test_float_to_int_truncation(self):
        assert run("int f(float x) { int i; i = x; return i; }", "f", 3.9) == 3
        assert run("int f(float x) { int i; i = x; return i; }", "f", -3.9) == -3

    def test_intrinsics(self):
        assert run("float f(float x) { return sqrt(x); }", "f", 9.0) == \
            pytest.approx(3.0)
        assert run("float f(float x) { return sin(x); }", "f", 0.0) == \
            pytest.approx(0.0)
        assert run("int f(int x) { return abs(x); }", "f", -4) == 4

    def test_comparison_as_value(self):
        assert run("int f(int a) { return a < 10; }", "f", 5) == 1
        assert run("int f(int a) { return a < 10; }", "f", 15) == 0

    def test_logical_values(self):
        src = "int f(int a, int b) { return a && b; }"
        assert run(src, "f", 1, 2) == 1
        assert run(src, "f", 1, 0) == 0
        src = "int f(int a, int b) { return a || b; }"
        assert run(src, "f", 0, 0) == 0
        assert run(src, "f", 0, 2) == 1

    def test_not(self):
        assert run("int f(int a) { return !a; }", "f", 0) == 1
        assert run("int f(int a) { return !a; }", "f", 7) == 0

    def test_ternary(self):
        src = "int f(int a) { return a > 0 ? a : -a; }"
        assert run(src, "f", -5) == 5
        assert run(src, "f", 5) == 5


class TestControlFlow:
    def test_if_else(self):
        src = "int f(int p) { int q; if (p) q = 1; else q = 2; return q; }"
        assert run(src, "f", 1) == 1
        assert run(src, "f", 0) == 2

    def test_while_loop(self):
        src = """
            int f(int p) {
                int q; q = p;
                while (q < 10) q++;
                return q;
            }
        """
        assert run(src, "f", 0) == 10
        assert run(src, "f", 42) == 42

    def test_for_loop_sum(self):
        src = """
            int f(int n) {
                int s = 0;
                for (int i = 1; i <= n; i++) s += i;
                return s;
            }
        """
        assert run(src, "f", 10) == 55

    def test_do_while(self):
        src = """
            int f() {
                int i = 0;
                do i++; while (i < 5);
                return i;
            }
        """
        assert run(src, "f") == 5

    def test_do_while_runs_once(self):
        src = """
            int f() {
                int i = 100;
                do i++; while (i < 5);
                return i;
            }
        """
        assert run(src, "f") == 101

    def test_break(self):
        src = """
            int f() {
                int i;
                for (i = 0; i < 100; i++) if (i == 7) break;
                return i;
            }
        """
        assert run(src, "f") == 7

    def test_continue(self):
        src = """
            int f() {
                int s = 0;
                for (int i = 0; i < 10; i++) {
                    if (i % 2) continue;
                    s += i;
                }
                return s;
            }
        """
        assert run(src, "f") == 20

    def test_nested_loops(self):
        src = """
            int f(int n) {
                int c = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j <= i; j++)
                        c++;
                return c;
            }
        """
        assert run(src, "f", 4) == 10

    def test_short_circuit_avoids_side_effects(self):
        src = """
            int hits = 0;
            int bump() { hits = hits + 1; return 1; }
            int f(int a) {
                if (a && bump()) return hits;
                return hits;
            }
        """
        program = compile_source(src)
        assert run_program(program, "f", 0).value == 0
        assert run_program(program, "f", 1).value == 1

    def test_prefix_vs_postfix(self):
        assert run("int f() { int i = 5; return ++i; }", "f") == 6
        assert run("int f() { int i = 5; return i++; }", "f") == 5
        assert run("int f() { int i = 5; i++; return i; }", "f") == 6

    def test_incdec_on_array_element(self):
        src = """
            int a[3];
            int f() { a[1] = 5; a[1]++; --a[1]; a[1]++; return a[1]; }
        """
        assert run(src, "f") == 6


class TestMemory:
    def test_global_scalar_init(self):
        assert run("int g = 11; int f() { return g; }", "f") == 11

    def test_global_array_init(self):
        src = "int t[4] = {3, 1, 4, 1}; int f(int i) { return t[i]; }"
        assert run(src, "f", 2) == 4

    def test_global_array_zero_fill(self):
        src = "int t[4] = {9}; int f() { return t[3]; }"
        assert run(src, "f") == 0

    def test_global_write(self):
        src = """
            int g;
            void set(int v) { g = v; }
            int f() { set(33); return g; }
        """
        assert run(src, "f") == 33

    def test_2d_array_row_major(self):
        src = """
            int m[3][4];
            int f() {
                int i, j;
                for (i = 0; i < 3; i++)
                    for (j = 0; j < 4; j++)
                        m[i][j] = 10 * i + j;
                return m[2][3];
            }
        """
        assert run(src, "f") == 23

    def test_local_array(self):
        src = """
            int f() {
                int buf[5];
                int i;
                for (i = 0; i < 5; i++) buf[i] = i * i;
                return buf[4];
            }
        """
        assert run(src, "f") == 16

    def test_local_array_initializer(self):
        src = "int f() { int t[3] = {7, 8, 9}; return t[1]; }"
        assert run(src, "f") == 8

    def test_local_arrays_fresh_per_call(self):
        src = """
            int leaf(int set) {
                int buf[2];
                if (set) buf[0] = 99;
                else buf[0] = 1;
                return buf[0];
            }
            int f() {
                int a; int b;
                a = leaf(1);
                b = leaf(0);
                return b;
            }
        """
        assert run(src, "f") == 1

    def test_globals_init_override(self):
        src = "int data[3]; int f() { return data[0] + data[1] + data[2]; }"
        assert run(src, "f", globals_init={"data": [5, 6, 7]}) == 18

    def test_float_global_array(self):
        src = "float w[2] = {0.5, 1.5}; float f() { return w[0] + w[1]; }"
        assert run(src, "f") == pytest.approx(2.0)

    def test_compound_assign_array_element_single_index_eval(self):
        # a[i++] += 1 would be pathological; we check the sane case:
        # the index of a compound assignment is evaluated once.
        src = """
            int a[4];
            int f() {
                int i = 2;
                a[i] = 10;
                a[i] += 5;
                return a[2];
            }
        """
        assert run(src, "f") == 15


class TestCalls:
    def test_call_chain(self):
        src = """
            int sq(int x) { return x * x; }
            int twice(int x) { return sq(x) + sq(x); }
            int f(int x) { return twice(x + 1); }
        """
        assert run(src, "f", 2) == 18

    def test_void_function(self):
        src = """
            int g;
            void bump() { g = g + 1; }
            int f() { bump(); bump(); return g; }
        """
        assert run(src, "f") == 2

    def test_float_params_coerced(self):
        src = """
            float half(float x) { return x / 2.0; }
            float f() { return half(7); }
        """
        assert run(src, "f") == pytest.approx(3.5)

    def test_call_in_condition(self):
        src = """
            int check(int v) { return v > 10; }
            int f(int v) { if (check(v)) return 1; return 0; }
        """
        assert run(src, "f", 11) == 1
        assert run(src, "f", 9) == 0

    def test_forward_reference(self):
        src = """
            int f(int x) { return helper(x) + 1; }
            int helper(int x) { return x * 2; }
        """
        assert run(src, "f", 5) == 11


class TestExecutionAccounting:
    def test_counts_sum_to_steps(self):
        program = compile_source(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i;"
            " return s; }")
        result = run_program(program, "f", 6)
        assert sum(result.counts) == result.steps

    def test_entry_executed_once(self):
        program = compile_source("int f() { return 1; }")
        result = run_program(program, "f")
        assert result.counts[program.functions["f"].entry_index] == 1

    def test_every_instruction_has_address(self):
        program = compile_source("""
            int g(int a) { return a + 1; }
            int f(int a) { return g(a) * 2; }
        """)
        addrs = [instr.addr for instr in program.code]
        assert addrs == sorted(addrs)
        assert addrs[0] == 0
        assert all(b - a == 4 for a, b in zip(addrs, addrs[1:]))

    def test_branch_targets_resolved(self):
        program = compile_source(
            "int f(int n) { while (n < 5) n++; return n; }")
        for instr in program.code:
            if instr.is_branch:
                assert isinstance(instr.target, int)
                assert 0 <= instr.target < len(program.code)

    def test_division_by_zero_raises(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run("int f(int a) { return 1 / a; }", "f", 0)

    def test_step_limit(self):
        from repro.errors import SimulationError
        from repro.sim import Interpreter

        program = compile_source("void f() { while (1) { } }")
        interp = Interpreter(program, step_limit=1000)
        with pytest.raises(SimulationError):
            interp.run("f")

    def test_disassembly_smoke(self):
        from repro.codegen import disassemble

        program = compile_source("int f(int a) { return a + 1; }")
        text = disassemble(program)
        assert "f:" in text
        assert Op.RET.value in text

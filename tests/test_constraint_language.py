"""Tests for the functionality-constraint language and DNF expansion."""

import pytest

from repro.errors import ConstraintSyntaxError
from repro.constraints import (VarRef, combine, parse_constraint,
                               trivially_null)


def x(n, function=None, path=()):
    return VarRef(f"x{n}", function, tuple(path))


class TestParsing:
    def test_simple_equality(self):
        formula = parse_constraint("x3 = x8")
        assert len(formula.sets) == 1
        relation = formula.sets[0][0]
        assert relation.sense == "=="
        assert relation.expr.terms == {x(3): 1.0, x(8): -1.0}

    def test_paper_loop_bounds_14_15(self):
        low = parse_constraint("x2 >= 1 x1").sets[0][0]
        assert low.sense == ">="
        assert low.expr.terms == {x(2): 1.0, x(1): -1.0}
        high = parse_constraint("x2 <= 10 x1").sets[0][0]
        assert high.expr.terms == {x(2): 1.0, x(1): -10.0}

    def test_juxtaposed_coefficient(self):
        relation = parse_constraint("10x1 >= x2").sets[0][0]
        assert relation.expr.terms == {x(1): 10.0, x(2): -1.0}

    def test_explicit_star(self):
        relation = parse_constraint("2 * x1 + 3*x2 <= 12").sets[0][0]
        assert relation.expr.terms == {x(1): 2.0, x(2): 3.0}
        assert relation.expr.const == -12.0

    def test_strict_inequalities_normalized(self):
        lt = parse_constraint("x1 < 5").sets[0][0]
        assert lt.sense == "<="
        assert lt.expr.const == -4.0          # x1 - 5 + 1 <= 0
        gt = parse_constraint("x1 > 2").sets[0][0]
        assert gt.sense == ">="
        assert gt.expr.const == -3.0

    def test_negative_terms(self):
        relation = parse_constraint("-x1 + 4 >= x2 - x3").sets[0][0]
        assert relation.expr.terms == {x(1): -1.0, x(2): -1.0, x(3): 1.0}

    def test_paper_disjunction_16(self):
        formula = parse_constraint("(x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0)")
        assert formula.is_disjunctive
        assert len(formula.sets) == 2
        assert all(len(s) == 2 for s in formula.sets)

    def test_conjunction_of_disjunctions_distributes(self):
        formula = parse_constraint("(x1 = 0 | x1 = 1) & (x2 = 0 | x2 = 1)")
        assert len(formula.sets) == 4

    def test_scoped_reference_paper_18(self):
        # x12 = x8.f1
        formula = parse_constraint("x12 = x8.f1")
        relation = formula.sets[0][0]
        refs = set(relation.expr.terms)
        assert x(12) in refs
        assert VarRef("x8", None, ("f1",)) in refs

    def test_multi_level_context_path(self):
        relation = parse_constraint("x3.f1.f2 <= 4").sets[0][0]
        assert VarRef("x3", None, ("f1", "f2")) in relation.expr.terms

    def test_function_qualified_reference(self):
        relation = parse_constraint("check_data.x8 = task.x12").sets[0][0]
        refs = set(relation.expr.terms)
        assert VarRef("x8", "check_data") in refs
        assert VarRef("x12", "task") in refs

    def test_d_and_f_variables(self):
        relation = parse_constraint("d2 = f1 + f2").sets[0][0]
        refs = {str(r) for r in relation.expr.terms}
        assert refs == {"d2", "f1", "f2"}

    def test_bad_character(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("x1 $ 3")

    def test_missing_operator(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("x1 x2")

    def test_unbalanced_paren(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("(x1 = 0 | x2 = 1")

    def test_bad_context_component(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("x1.banana = 2")

    def test_empty_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint("")


class TestDNFCombination:
    def paper_check_data_formulas(self):
        return [
            parse_constraint("x2 >= 1 x1"),
            parse_constraint("x2 <= 10 x1"),
            parse_constraint("(x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0)"),
            parse_constraint("x3 = x8"),
        ]

    def test_paper_example_yields_two_sets(self):
        # §III-D: intersecting (14)-(17) gives exactly two sets.
        expansion = combine(self.paper_check_data_formulas())
        assert expansion.count == 2
        assert expansion.total_before_pruning == 2
        assert expansion.pruned == 0

    def test_conflicting_disjunctions_pruned(self):
        formulas = [
            parse_constraint("x3 = 0 | x3 = 1"),
            parse_constraint("x3 = 1 | x3 = 2"),
        ]
        expansion = combine(formulas)
        # 4 raw combinations; x3=0&x3=1, x3=0&x3=2, x3=1&x3=2 are null.
        assert expansion.total_before_pruning == 4
        assert expansion.count == 1
        assert expansion.pruned == 3

    def test_no_formulas_gives_one_empty_set(self):
        expansion = combine([])
        assert expansion.count == 1
        assert expansion.sets == [[]]

    def test_size_doubles_per_disjunction(self):
        formulas = [parse_constraint(f"x{i} = 0 | x{i} = 1")
                    for i in range(1, 4)]
        expansion = combine(formulas, prune=False)
        assert expansion.count == 8

    def test_negative_count_pruned(self):
        # Counts are nonnegative; x1 <= -1 is null on its own.
        expansion = combine([parse_constraint("x1 <= -1")])
        assert expansion.count == 0

    def test_interval_conflict_detected(self):
        relations = (parse_constraint("x1 >= 5").sets[0]
                     + parse_constraint("x1 <= 4").sets[0])
        assert trivially_null(relations)

    def test_interval_agreement_kept(self):
        relations = (parse_constraint("x1 >= 2").sets[0]
                     + parse_constraint("x1 <= 4").sets[0])
        assert not trivially_null(relations)

    def test_multivar_relations_not_pruned(self):
        # Interval propagation must not misjudge relations with 2 vars.
        relations = parse_constraint("x1 + x2 <= -3").sets[0]
        # (Actually infeasible over nonnegative counts, but only the ILP
        # may conclude that; the cheap pruner must keep it.)
        assert not trivially_null(relations)

    def test_scaled_single_var(self):
        relations = (parse_constraint("2 x1 <= 5").sets[0]
                     + parse_constraint("3 x1 >= 9").sets[0])
        # x1 <= 2.5 and x1 >= 3 -> empty integers.
        assert trivially_null(relations)

    def test_constant_only_false_relation(self):
        relations = parse_constraint("1 <= 0").sets[0]
        assert trivially_null(relations)

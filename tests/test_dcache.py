"""Tests for the data-cache extension (§VII future work)."""

import pytest

from repro import Analysis, calculated_bound, measure_bounds
from repro.cfg import build_cfgs
from repro.codegen import compile_source
from repro.hw import DCache, cost_table, i960kb, i960kb_dcache
from repro.programs import get_benchmark
from repro.sim import CycleModel, Interpreter

ARRAY_WALK = """
int data[64];
int f() {
    int i, s;
    s = 0;
    for (i = 0; i < 64; i++)
        s += data[i];
    return s;
}
"""


class TestDCacheModel:
    def test_read_allocate(self):
        cache = DCache(i960kb_dcache())
        assert not cache.read(0)       # miss fills the 4-word line
        assert cache.read(1)
        assert cache.read(3)
        assert not cache.read(4)       # next line

    def test_conflict(self):
        machine = i960kb_dcache()
        cache = DCache(machine)
        cache.read(0)
        stride = machine.dcache_words  # same set, different tag
        assert not cache.read(stride)
        assert not cache.read(0)

    def test_disabled_on_plain_i960(self):
        cache = DCache(i960kb())
        assert not cache.enabled
        assert cache.read(123)

    def test_flush(self):
        cache = DCache(i960kb_dcache())
        cache.read(0)
        cache.flush()
        assert not cache.read(0)

    def test_bad_geometry(self):
        from repro.hw import Machine

        with pytest.raises(ValueError):
            Machine(dcache_words=10, dcache_line_words=4)


class TestCostsAndSimulation:
    def test_worst_cost_charges_loads(self):
        program = compile_source(ARRAY_WALK)
        cfgs = build_cfgs(program)
        plain = cost_table(cfgs["f"], i960kb())
        dmach = i960kb_dcache()
        with_d = cost_table(cfgs["f"], dmach)
        from repro.codegen.isa import Op

        for block_id, block in cfgs["f"].blocks.items():
            loads = sum(1 for i in block.instrs if i.op is Op.LD)
            gap = (with_d[block_id].worst - with_d[block_id].best) - \
                  (plain[block_id].worst - plain[block_id].best)
            assert gap == loads * dmach.dcache_miss_penalty

    def test_bracketing_invariant_with_dcache(self):
        program = compile_source(ARRAY_WALK)
        machine = i960kb_dcache()
        model = CycleModel(machine)
        model.record_per_instruction()
        model.flush()
        interp = Interpreter(program, cycle_model=model)
        result = interp.run("f")
        cfg = build_cfgs(program)["f"]
        costs = cost_table(cfg, machine)
        for block_id, block in cfg.blocks.items():
            count = result.counts[block.start]
            observed = sum(model.per_index.get(i, 0)
                           for i in range(block.start, block.end))
            assert count * costs[block_id].best <= observed
            assert observed <= count * costs[block_id].worst

    def test_sequential_walk_mostly_hits(self):
        # A 4-word-line D-cache turns 64 sequential loads into 16
        # misses + 48 hits.
        program = compile_source(ARRAY_WALK)
        model = CycleModel(i960kb_dcache())
        model.flush()
        Interpreter(program, cycle_model=model).run("f")
        assert model.dcache.misses == 16
        assert model.dcache.hits == 48

    def test_estimate_sound_on_dcache_machine(self):
        bench = get_benchmark("piksrt")
        machine = i960kb_dcache()
        report = bench.make_analysis(machine=machine).estimate()
        calc = calculated_bound(bench.program, bench.entry,
                                bench.best_data, bench.worst_data,
                                machine=machine)
        measured = measure_bounds(bench.program, bench.entry,
                                  bench.best_data, bench.worst_data,
                                  machine=machine)
        assert report.best <= calc.best <= calc.worst <= report.worst
        assert report.encloses(measured.interval)

    def test_dcache_widens_the_bound(self):
        # Hit/miss uncertainty on data adds pessimism: the very thing
        # the paper's §VII flags as the next modeling battle.
        analysis_plain = Analysis(ARRAY_WALK, entry="f",
                                  machine=i960kb())
        analysis_plain.bound_loop(lo=64, hi=64)
        plain = analysis_plain.estimate()

        analysis_d = Analysis(ARRAY_WALK, entry="f",
                              machine=i960kb_dcache())
        analysis_d.bound_loop(lo=64, hi=64)
        withd = analysis_d.estimate()
        gap_plain = plain.worst - plain.best
        gap_d = withd.worst - withd.best
        assert gap_d > gap_plain

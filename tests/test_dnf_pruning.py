"""DNF expansion: null-set pruning and canonical set ordering."""

import pytest

from repro.constraints import (canonical_set_key, combine,
                               parse_constraint, trivially_null)
from repro.errors import InfeasibleError


def _sets(*texts, prune=True):
    return combine([parse_constraint(t) for t in texts], prune=prune)


class TestNullPruning:
    def test_contradictory_equalities_pruned(self):
        expansion = _sets("x3 = 0", "x3 = 1")
        assert expansion.total_before_pruning == 1
        assert expansion.pruned == 1
        assert expansion.count == 0

    def test_equality_against_lower_bound_pruned(self):
        # The paper's canonical null set: x3 = 0 against x3 >= 1.
        expansion = _sets("x3 = 0", "x3 >= 1")
        assert expansion.count == 0 and expansion.pruned == 1

    def test_empty_integer_gap_pruned(self):
        # 1 <= x3 and 2*x3 <= 1 leaves only x3 = 0.5: no integer fits.
        expansion = _sets("x3 >= 1", "2*x3 <= 1")
        assert expansion.count == 0 and expansion.pruned == 1

    def test_fractional_point_pruned(self):
        # 2*x3 = 1 pins x3 at 0.5 — no integer count satisfies it.
        expansion = _sets("2*x3 = 1")
        assert expansion.count == 0 and expansion.pruned == 1

    def test_negative_only_domain_pruned(self):
        # Counts are nonnegative, so x3 <= -1 is already null.
        expansion = _sets("x3 <= 0 - 1")
        assert expansion.count == 0 and expansion.pruned == 1

    def test_disjunction_prunes_only_null_branches(self):
        expansion = _sets("(x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0)",
                          "x3 = 0")
        assert expansion.total_before_pruning == 2
        assert expansion.pruned == 1
        assert expansion.count == 1
        survivor = expansion.sets[0]
        assert trivially_null(survivor) is False

    def test_multivariable_infeasibility_survives_pruning(self):
        # Interval propagation is single-variable: a set that is only
        # jointly infeasible must survive to the ILP, which then
        # reports it infeasible.
        expansion = _sets("x1 + x2 <= 1", "x1 >= 1", "x2 >= 1")
        assert expansion.pruned == 0
        assert expansion.count == 1

    def test_prune_false_keeps_null_sets(self):
        expansion = _sets("x3 = 0", "x3 >= 1", prune=False)
        assert expansion.count == 1 and expansion.pruned == 0

    def test_all_sets_null_is_analysis_error(self):
        from repro.analysis import Analysis

        analysis = Analysis(
            "int f(int n) { int i; int s; s = 0;"
            " for (i = 0; i < 4; i++) s += i; return s; }",
            entry="f")
        analysis.auto_bound_loops()
        analysis.add_constraint("x2 = 0")
        analysis.add_constraint("x2 >= 1")
        with pytest.raises(InfeasibleError):
            analysis.estimate()


class TestCanonicalOrder:
    def test_formula_order_does_not_change_set_order(self):
        texts = ["(x3 = 0 & x5 = 1) | (x3 = 1 & x5 = 0)",
                 "(x7 = 0) | (x7 = 2)"]
        forward = _sets(*texts)
        backward = _sets(*reversed(texts))
        keys = [canonical_set_key(s) for s in forward.sets]
        assert keys == [canonical_set_key(s) for s in backward.sets]
        assert keys == sorted(keys)

    def test_relation_spelling_does_not_change_key(self):
        a = parse_constraint("x1 + 2*x2 <= 7").sets[0]
        b = parse_constraint("2*x2 + x1 <= 7").sets[0]
        assert canonical_set_key(a) == canonical_set_key(b)

    def test_expansion_sets_arrive_sorted(self):
        expansion = _sets("(x3 = 0) | (x3 = 1)", "(x5 = 0) | (x5 = 1)")
        assert expansion.count == 4
        keys = [canonical_set_key(s) for s in expansion.sets]
        assert keys == sorted(keys)

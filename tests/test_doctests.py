"""Run the doctest examples embedded in module/class docstrings."""

import doctest

import pytest

import repro
import repro.analysis.ipet
import repro.ilp.expr
import repro.ilp.model
import repro.obs.registry
import repro.service

MODULES = [repro, repro.analysis.ipet, repro.ilp.expr,
           repro.ilp.model, repro.obs.registry, repro.service]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} has no examples"


def test_cfg_dot_export():
    from repro.cfg import build_cfg
    from repro.codegen import compile_source

    program = compile_source("""
        int g;
        void leaf() { g = g + 1; }
        int f(int p) {
            if (p) leaf();
            return g;
        }
    """)
    dot = build_cfg(program, program.functions["f"]).to_dot()
    assert dot.startswith('digraph "f"')
    assert "entry ->" in dot
    assert "-> exit" in dot
    assert "style=dashed" in dot          # the call edge
    assert "(leaf)" in dot

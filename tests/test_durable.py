"""Durable cluster layer: journal replay, tenancy, work sharing.

Journal semantics are tested at the file level (torn tails, duplicate
frames, crash-during-compaction) and end-to-end (a service restarted
on a journal re-dispatches recovered jobs).  Tenancy and peer stealing
use the same deterministic gated-runner embedding as
``tests/test_service.py``.
"""

import json
import threading
import time

import pytest

from repro.engine.jobs import JobResult
from repro.obs import MetricsRegistry
from repro.service import (ClientError, JobJournal, JobQueue, JobRecord,
                           JobSpec, JournalError, ServiceClient,
                           ServiceSaturated, ServiceThread,
                           TenantConfigError, TenantRegistry)
from repro.service.durable.journal import MAGIC, apply_record


class GatedRunner:
    """A fake engine runner the test can hold and release."""

    def __init__(self, delay: float = 0.0):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.delay = delay
        self.payloads = []
        self._lock = threading.Lock()

    def __call__(self, payload):
        with self._lock:
            self.payloads.append(payload)
        self.started.set()
        if not self.gate.wait(timeout=30):
            raise TimeoutError("test never released the gate")
        if self.delay:
            time.sleep(self.delay)
        return JobResult(payload[0].name, "ok")

    @property
    def names(self):
        with self._lock:
            return [payload[0].name for payload in self.payloads]


def _thread_service(**kwargs):
    kwargs.setdefault("executor", "thread")
    return ServiceThread(**kwargs)


def _src(name, **extra):
    return {"name": name, "source": "int f() { return 1; }",
            "entry": "f", **extra}


def _spec_dict(name):
    return JobSpec.from_dict(_src(name)).to_dict()


# ======================================================================
# Journal: frames, replay, compaction
# ======================================================================
class TestJournalReplay:
    def test_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        journal.append("submit", id="j000001",
                       spec=_spec_dict("a"), tenant=None)
        journal.append("start", id="j000001")
        journal.append("set_done", id="j000001", set=0,
                       worst=10, best=2, feasible=True)
        journal.append("complete", id="j000001", status="ok",
                       cache_hit=False, report=None)
        journal.append("submit", id="j000002",
                       spec=_spec_dict("b"), tenant="ci")
        journal.append("start", id="j000002")
        journal.append("submit", id="j000003",
                       spec=_spec_dict("c"), tenant=None)
        journal.close()

        state = JobJournal(tmp_path).open()
        assert not state.tail_dropped
        assert state.set_records == 1
        jobs = state.jobs
        assert jobs["j000001"]["state"] == "done"
        assert jobs["j000001"]["status"] == "ok"
        assert jobs["j000002"]["state"] == "running"
        assert jobs["j000002"]["tenant"] == "ci"
        assert jobs["j000003"]["state"] == "queued"

    def test_truncated_tail_frame_drops_only_the_tail(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        for n in range(4):
            journal.append("submit", id=f"j{n:06d}",
                           spec=_spec_dict(f"job{n}"), tenant=None)
        journal.close()
        # Tear the last frame mid-payload, as a crash mid-append would.
        wal = tmp_path / "journal.wal"
        wal.write_bytes(wal.read_bytes()[:-7])

        state = JobJournal(tmp_path).open()
        assert state.tail_dropped
        assert sorted(state.jobs) == ["j000000", "j000001", "j000002"]

    def test_corrupt_crc_stops_replay(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        journal.append("submit", id="j000001",
                       spec=_spec_dict("a"), tenant=None)
        journal.append("submit", id="j000002",
                       spec=_spec_dict("b"), tenant=None)
        journal.close()
        wal = tmp_path / "journal.wal"
        data = bytearray(wal.read_bytes())
        data[-1] ^= 0xFF                       # flip a payload byte
        wal.write_bytes(bytes(data))

        state = JobJournal(tmp_path).open()
        assert state.tail_dropped
        assert sorted(state.jobs) == ["j000001"]

    def test_duplicate_records_replay_idempotently(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        for _ in range(3):                     # replayed WAL segment
            journal.append("submit", id="j000001",
                           spec=_spec_dict("a"), tenant=None)
            journal.append("start", id="j000001")
        journal.append("complete", id="j000001", status="ok",
                       cache_hit=True, report=None)
        journal.append("start", id="j000001")  # late duplicate
        journal.append("complete", id="j000001", status="ok",
                       cache_hit=True, report=None)
        journal.close()

        state = JobJournal(tmp_path).open()
        assert list(state.jobs) == ["j000001"]
        job = state.jobs["j000001"]
        assert job["state"] == "done" and job["cache_hit"] is True

    def test_terminal_state_is_monotonic(self):
        jobs = {}
        apply_record(jobs, {"type": "submit", "id": "j1",
                            "spec": {}, "tenant": None})
        apply_record(jobs, {"type": "fail", "id": "j1",
                            "status": "failed", "error": "boom"})
        apply_record(jobs, {"type": "start", "id": "j1"})
        apply_record(jobs, {"type": "lease", "id": "j1", "peer": "p"})
        assert jobs["j1"]["state"] == "failed"
        assert jobs["j1"]["error"] == "boom"

    def test_crash_during_compaction_recovers_consistently(self,
                                                           tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        journal.append("submit", id="j000001",
                       spec=_spec_dict("a"), tenant=None)
        journal.append("complete", id="j000001", status="ok",
                       cache_hit=False, report=None)
        journal.append("submit", id="j000002",
                       spec=_spec_dict("b"), tenant=None)
        state = JobJournal(tmp_path).open().jobs
        # Crash window: snapshot renamed into place, WAL not yet
        # truncated — every WAL record is already folded into the
        # snapshot.
        journal._write_snapshot(state)
        journal.close()
        assert (tmp_path / "snapshot.json").exists()

        replayed = JobJournal(tmp_path).open()
        assert replayed.jobs["j000001"]["state"] == "done"
        assert replayed.jobs["j000002"]["state"] == "queued"
        assert len(replayed.jobs) == 2

    def test_partial_snapshot_tmp_is_ignored(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        journal.append("submit", id="j000001",
                       spec=_spec_dict("a"), tenant=None)
        journal.close()
        # Crash mid-snapshot-write: a torn temp file, never renamed.
        (tmp_path / "snapshot.json.tmp").write_text('{"schema": 1, "jo')

        state = JobJournal(tmp_path).open()
        assert state.jobs["j000001"]["state"] == "queued"

    def test_compaction_resets_wal_and_preserves_state(self, tmp_path):
        journal = JobJournal(tmp_path, compact_records=4)
        journal.open()
        for n in range(6):
            journal.append("submit", id=f"j{n:06d}",
                           spec=_spec_dict(f"job{n}"), tenant=None)
        assert journal.should_compact()
        state = {f"j{n:06d}": {"spec": _spec_dict(f"job{n}"),
                               "state": "queued", "tenant": None}
                 for n in range(6)}
        journal.compact(state)
        assert journal.wal_bytes == len(MAGIC)
        journal.append("complete", id="j000000", status="ok",
                       cache_hit=False, report=None)
        journal.close()

        replayed = JobJournal(tmp_path).open()
        assert len(replayed.jobs) == 6
        assert replayed.jobs["j000000"]["state"] == "done"
        assert replayed.jobs["j000005"]["state"] == "queued"

    def test_foreign_magic_is_rejected(self, tmp_path):
        (tmp_path / "journal.wal").write_bytes(b"NOTAJRNL" + b"x" * 32)
        with pytest.raises(JournalError, match="magic"):
            JobJournal(tmp_path).open()


# ======================================================================
# Service recovery from a journal
# ======================================================================
class TestRecovery:
    def _seed_journal(self, root):
        """A prior service life: one finished job, one queued, one
        mid-flight when the process died."""
        journal = JobJournal(root)
        journal.open()
        journal.append("submit", id="j000001",
                       spec=_spec_dict("finished"), tenant=None)
        journal.append("start", id="j000001")
        journal.append("complete", id="j000001", status="ok",
                       cache_hit=False, report=None)
        journal.append("submit", id="j000002",
                       spec=_spec_dict("queued"), tenant=None)
        journal.append("submit", id="j000003",
                       spec=_spec_dict("inflight"), tenant=None)
        journal.append("start", id="j000003")
        journal.close()

    def test_restart_redispatches_queued_and_inflight(self, tmp_path):
        self._seed_journal(tmp_path)
        runner = GatedRunner()
        runner.gate.set()
        with _thread_service(workers=1, runner=runner,
                             journal_dir=tmp_path) as handle:
            client = ServiceClient(port=handle.port)
            # Recovered jobs finish; the finished one is not re-run.
            queued = client.wait("j000002", timeout=30)
            inflight = client.wait("j000003", timeout=30)
            finished = client.job("j000001")
            assert queued["state"] == "done" and queued["recovered"]
            assert inflight["state"] == "done" and inflight["recovered"]
            assert finished["state"] == "done"
            # Id sequence resumes beyond the journal's high-water mark.
            fresh = client.submit(_src("fresh"))
            assert fresh["id"] == "j000004"
            client.wait("j000004", timeout=30)
            snapshot = client.metricz()
        assert sorted(runner.names) == ["fresh", "inflight", "queued"]
        registry = MetricsRegistry.from_snapshot(snapshot)
        assert registry.value("service.jobs.recovered") == 2

    def test_recovered_queue_preserves_submission_order(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.open()
        for n in (1, 2, 3):
            journal.append("submit", id=f"j{n:06d}",
                           spec=_spec_dict(f"job{n}"), tenant=None)
        journal.close()
        runner = GatedRunner()
        runner.gate.set()
        with _thread_service(workers=1, runner=runner,
                             journal_dir=tmp_path) as handle:
            client = ServiceClient(port=handle.port)
            for n in (1, 2, 3):
                client.wait(f"j{n:06d}", timeout=30)
        assert runner.names == ["job1", "job2", "job3"]

    def test_recovery_exceeding_queue_depth_still_boots(self, tmp_path):
        """A journal can hold more live jobs than the queue cap (a full
        queue plus in-flight work at crash time); recovery must admit
        them all instead of failing every restart with 429's error."""
        journal = JobJournal(tmp_path)
        journal.open()
        for n in range(5):
            journal.append("submit", id=f"j{n:06d}",
                           spec=_spec_dict(f"job{n}"), tenant=None)
        journal.append("start", id="j000004")   # running at crash
        journal.close()
        runner = GatedRunner()
        runner.gate.set()
        with _thread_service(workers=1, runner=runner, queue_depth=2,
                             journal_dir=tmp_path) as handle:
            client = ServiceClient(port=handle.port)
            for n in range(5):
                record = client.wait(f"j{n:06d}", timeout=30)
                assert record["state"] == "done" and record["recovered"]

    def test_drain_compacts_for_a_fast_restart(self, tmp_path):
        runner = GatedRunner()
        runner.gate.set()
        with _thread_service(workers=1, runner=runner,
                             journal_dir=tmp_path) as handle:
            client = ServiceClient(port=handle.port)
            client.wait(client.submit(_src("one"))["id"], timeout=30)
        # Drain folded everything into the snapshot and reset the WAL.
        snapshot = json.loads((tmp_path / "snapshot.json").read_text())
        assert snapshot["jobs"]["j000001"]["state"] == "done"
        assert (tmp_path / "journal.wal").stat().st_size == len(MAGIC)
        state = JobJournal(tmp_path).open()
        assert state.jobs["j000001"]["state"] == "done"


# ======================================================================
# Tenancy: keys, quotas, rate limits, fair share
# ======================================================================
def _tenants_file(tmp_path, text):
    path = tmp_path / "tenants.toml"
    path.write_text(text)
    return path


class TestTenants:
    def test_load_toml_and_json(self, tmp_path):
        toml = _tenants_file(tmp_path, '[ci]\nkey = "s1"\nweight = 2.0\n')
        registry = TenantRegistry.load(toml)
        assert registry.authenticate("s1").name == "ci"
        json_path = tmp_path / "tenants.json"
        json_path.write_text('{"adhoc": {"key": "s2", "rate": 1.5}}')
        registry = TenantRegistry.load(json_path)
        assert registry.authenticate("s2").rate == 1.5
        assert registry.authenticate("nope") is None

    @pytest.mark.parametrize("text", [
        "",                                       # empty
        "[ci]\nweight = 1.0\n",                   # no key
        '[ci]\nkey = "s"\nfrobnicate = 1\n',      # unknown setting
        '[ci]\nkey = "s"\nweight = 0.0\n',        # bad weight
        '[a]\nkey = "s"\n[b]\nkey = "s"\n',       # duplicate key
    ])
    def test_bad_tenant_files(self, tmp_path, text):
        with pytest.raises(TenantConfigError):
            TenantRegistry.load(_tenants_file(tmp_path, text))

    def test_unknown_key_is_401(self, tmp_path):
        tenants = _tenants_file(tmp_path, '[ci]\nkey = "secret"\n')
        runner = GatedRunner()
        runner.gate.set()
        with _thread_service(workers=1, runner=runner,
                             tenants=tenants) as handle:
            with pytest.raises(ClientError, match="HTTP 401"):
                ServiceClient(port=handle.port).submit(_src("anon"))
            with pytest.raises(ClientError, match="HTTP 401"):
                ServiceClient(port=handle.port,
                              api_key="wrong").submit(_src("bad"))
            client = ServiceClient(port=handle.port, api_key="secret")
            record = client.wait(client.submit(_src("ok"))["id"],
                                 timeout=30)
            assert record["tenant"] == "ci"

    def test_max_queued_quota_is_429(self, tmp_path):
        tenants = _tenants_file(
            tmp_path, '[ci]\nkey = "secret"\nmax_queued = 1\n')
        runner = GatedRunner()
        with _thread_service(workers=1, runner=runner,
                             tenants=tenants) as handle:
            client = ServiceClient(port=handle.port, api_key="secret")
            client.submit(_src("inflight"))
            assert runner.started.wait(timeout=10)
            client.submit(_src("queued"))          # fills the quota
            with pytest.raises(ServiceSaturated):
                client.submit(_src("over-quota"))
            runner.gate.set()
            snapshot = client.metricz()
        registry = MetricsRegistry.from_snapshot(snapshot)
        assert registry.value("service.jobs.throttled") == 1
        assert "over-quota" not in runner.names

    def test_submit_rate_limit_is_429_with_retry_after(self, tmp_path):
        tenants = _tenants_file(
            tmp_path, '[ci]\nkey = "secret"\nrate = 0.5\nburst = 1\n')
        runner = GatedRunner()
        runner.gate.set()
        with _thread_service(workers=1, runner=runner,
                             tenants=tenants) as handle:
            client = ServiceClient(port=handle.port, api_key="secret")
            client.submit(_src("first"))
            with pytest.raises(ServiceSaturated) as excinfo:
                client.submit(_src("rate-limited"))
            assert excinfo.value.retry_after >= 1

    def test_quota_rejection_does_not_burn_a_rate_token(self):
        from repro.service.durable.tenants import Tenant

        registry = TenantRegistry([Tenant(
            name="ci", key="k", max_queued=1, rate=0.001, burst=1.0)])
        tenant = registry.tenants["ci"]
        registry.note_queued("ci")              # at the queue cap
        rejected = registry.admit(tenant)
        assert not rejected.ok and "queued" in rejected.reason
        registry.note_dequeued("ci")            # a slot frees up
        # The quota bounce above must not have consumed the single
        # token: this admission still succeeds on it...
        assert registry.admit(tenant).ok
        # ...and only now is the bucket empty.
        throttled = registry.admit(tenant)
        assert not throttled.ok and "rate" in throttled.reason
        import asyncio

        registry = TenantRegistry([
            # heavy pays 1/2 pass per job, light pays 1.
            __import__("repro.service.durable.tenants",
                       fromlist=["Tenant"]).Tenant(
                name="heavy", key="h", weight=2.0),
            __import__("repro.service.durable.tenants",
                       fromlist=["Tenant"]).Tenant(
                name="light", key="l", weight=1.0),
        ])

        async def scenario():
            queue = JobQueue()
            for tenant, name in (("heavy", "h1"), ("light", "l1"),
                                 ("heavy", "h2"), ("light", "l2"),
                                 ("heavy", "h3"), ("light", "l3")):
                record = JobRecord(
                    id=name, spec=JobSpec(name=name, benchmark=name),
                    tenant=tenant)
                record.fair_pass = registry.next_pass(tenant)
                queue.push(record)
            return [(await queue.pop()).id for _ in range(6)]

        order = asyncio.run(scenario())
        # Strides: heavy 0.5/1.0/1.5, light 1.0/2.0/3.0 — under
        # contention the weight-2 tenant drains twice as fast.
        assert order == ["h1", "l1", "h2", "h3", "l2", "l3"]


# ======================================================================
# Peer work sharing
# ======================================================================
class TestWorkSharing:
    def test_claim_leases_queued_jobs(self):
        runner = GatedRunner()
        with _thread_service(workers=1, runner=runner) as handle:
            client = ServiceClient(port=handle.port)
            client.submit(_src("inflight"))
            assert runner.started.wait(timeout=10)
            client.submit(_src("stealme-1"))
            client.submit(_src("stealme-2"))

            jobs = client.peer_claim(limit=5, peer="test-peer")
            assert [job["spec"]["name"] for job in jobs] \
                == ["stealme-1", "stealme-2"]
            for job in jobs:
                record = client.job(job["id"])
                assert record["state"] == "leased"
                assert record["leased_to"] == "test-peer"
            assert client.peer_claim(limit=5) == []   # queue is empty

            # Journal handoff: completing folds the result in once.
            first = client.peer_complete(
                {"id": jobs[0]["id"], "state": "done", "status": "ok",
                 "peer": "test-peer"})
            assert first == {"state": "done", "duplicate": False}
            again = client.peer_complete(
                {"id": jobs[0]["id"], "state": "done", "status": "ok",
                 "peer": "test-peer"})
            assert again == {"state": "done", "duplicate": True}
            failed = client.peer_complete(
                {"id": jobs[1]["id"], "state": "failed",
                 "error": "peer exploded", "peer": "test-peer"})
            assert failed["state"] == "failed"
            with pytest.raises(ClientError, match="HTTP 404"):
                client.peer_complete({"id": "j999999",
                                      "state": "done",
                                      "peer": "test-peer"})

            assert client.job(jobs[0]["id"])["state"] == "done"
            assert client.job(jobs[1]["id"])["error"] == "peer exploded"
            runner.gate.set()
        assert "stealme-1" not in runner.names     # ran on the "peer"

    def test_expired_lease_requeues_at_owner(self):
        runner = GatedRunner()
        runner.gate.set()
        with _thread_service(workers=1, runner=runner,
                             lease_seconds=0.3) as handle:
            client = ServiceClient(port=handle.port)
            runner.gate.clear()
            blocker = client.submit(_src("blocker"))
            assert runner.started.wait(timeout=10)
            victim = client.submit(_src("victim"))
            jobs = client.peer_claim(limit=1, peer="dead-peer")
            assert jobs[0]["id"] == victim["id"]
            runner.gate.set()
            client.wait(blocker["id"], timeout=30)
            # The peer never completes; the lease expires back home.
            record = client.wait(victim["id"], timeout=30)
            assert record["state"] == "done"
            snapshot = client.metricz()
        assert "victim" in runner.names
        registry = MetricsRegistry.from_snapshot(snapshot)
        assert registry.value("service.peer.lease_expired") == 1
        assert registry.value("service.peer.claimed") == 1

    def test_idle_replica_steals_and_returns_results(self):
        owner_runner = GatedRunner(delay=0.4)
        owner_runner.gate.set()
        stealer_runner = GatedRunner()
        stealer_runner.gate.set()
        # Both replicas hold the cluster key, so the whole balancer
        # path (claim + complete) runs authenticated.
        with _thread_service(workers=1, runner=owner_runner,
                             cluster_key="fleet-secret",
                             lease_seconds=30.0) as owner:
            with _thread_service(
                    workers=2, runner=stealer_runner,
                    peers=[f"127.0.0.1:{owner.port}"],
                    cluster_key="fleet-secret",
                    balance_interval=0.1) as stealer:
                client = ServiceClient(port=owner.port)
                tickets = [client.submit(_src(f"job-{n}"))
                           for n in range(5)]
                records = [client.wait(ticket["id"], timeout=60)
                           for ticket in tickets]
                assert all(r["state"] == "done" for r in records)
                owner_metrics = MetricsRegistry.from_snapshot(
                    client.metricz())
                stealer_metrics = MetricsRegistry.from_snapshot(
                    ServiceClient(port=stealer.port).metricz())

        stolen = stealer_metrics.value("service.peer.stolen")
        assert stolen >= 1
        assert owner_metrics.value("service.peer.claimed") == stolen
        assert owner_metrics.value("service.peer.completed") \
            == stealer_metrics.value("service.peer.returned")
        # Every job ran exactly once, somewhere.
        assert sorted(owner_runner.names + stealer_runner.names) \
            == sorted(f"job-{n}" for n in range(5))


class TestPeerEndpointSecurity:
    def test_cluster_key_guards_claim_and_complete(self):
        runner = GatedRunner()
        with _thread_service(workers=1, runner=runner,
                             cluster_key="swordfish") as handle:
            anon = ServiceClient(port=handle.port)
            wrong = ServiceClient(port=handle.port, cluster_key="nope")
            peer = ServiceClient(port=handle.port,
                                 cluster_key="swordfish")
            anon.submit(_src("inflight"))   # /v1/jobs stays open
            assert runner.started.wait(timeout=10)
            anon.submit(_src("stealme"))
            with pytest.raises(ClientError, match="HTTP 401"):
                anon.peer_claim(limit=1, peer="p")
            with pytest.raises(ClientError, match="HTTP 401"):
                wrong.peer_claim(limit=1, peer="p")
            jobs = peer.peer_claim(limit=1, peer="p")
            assert [job["spec"]["name"] for job in jobs] == ["stealme"]
            with pytest.raises(ClientError, match="HTTP 401"):
                anon.peer_complete({"id": jobs[0]["id"],
                                    "state": "done", "status": "ok",
                                    "peer": "p"})
            done = peer.peer_complete({"id": jobs[0]["id"],
                                       "state": "done", "status": "ok",
                                       "peer": "p"})
            assert done == {"state": "done", "duplicate": False}
            runner.gate.set()

    def test_tenancy_without_cluster_key_closes_peer_endpoints(
            self, tmp_path):
        """--tenants guards /v1/jobs with API keys; the peer endpoints
        must not stay an unauthenticated side door into tenant job
        specs and forged completions."""
        tenants = _tenants_file(tmp_path, '[ci]\nkey = "secret"\n')
        runner = GatedRunner()
        with _thread_service(workers=1, runner=runner,
                             tenants=tenants) as handle:
            client = ServiceClient(port=handle.port, api_key="secret")
            client.submit(_src("inflight"))
            assert runner.started.wait(timeout=10)
            ticket = client.submit(_src("queued"))
            with pytest.raises(ClientError, match="HTTP 401"):
                client.peer_claim(limit=1, peer="p")
            with pytest.raises(ClientError, match="HTTP 401"):
                client.peer_complete({"id": ticket["id"],
                                      "state": "done", "status": "ok",
                                      "peer": "p"})
            runner.gate.set()

    def test_complete_requires_an_active_matching_lease(self):
        runner = GatedRunner()
        with _thread_service(workers=1, runner=runner) as handle:
            client = ServiceClient(port=handle.port)
            blocker = client.submit(_src("blocker"))
            assert runner.started.wait(timeout=10)
            queued = client.submit(_src("queued"))
            # Never leased: a queued job cannot be completed from
            # outside...
            with pytest.raises(ClientError, match="HTTP 409"):
                client.peer_complete({"id": queued["id"],
                                      "state": "done", "status": "ok",
                                      "peer": "x"})
            # ...nor can a job running locally (a late complete after
            # lease expiry must not race the local execution).
            with pytest.raises(ClientError, match="HTTP 409"):
                client.peer_complete({"id": blocker["id"],
                                      "state": "done", "status": "ok",
                                      "peer": "x"})
            jobs = client.peer_claim(limit=1, peer="replica-a")
            assert jobs[0]["id"] == queued["id"]
            # Leased to replica-a; replica-b may not complete it.
            with pytest.raises(ClientError, match="HTTP 409"):
                client.peer_complete({"id": queued["id"],
                                      "state": "done", "status": "ok",
                                      "peer": "replica-b"})
            done = client.peer_complete({"id": queued["id"],
                                         "state": "done",
                                         "status": "ok",
                                         "peer": "replica-a"})
            assert done == {"state": "done", "duplicate": False}
            runner.gate.set()

    def test_no_share_rejects_peer_complete(self):
        runner = GatedRunner()
        runner.gate.set()
        with _thread_service(workers=1, runner=runner,
                             share=False) as handle:
            client = ServiceClient(port=handle.port)
            ticket = client.submit(_src("mine"))
            assert client.peer_claim(limit=1, peer="p") == []
            with pytest.raises(ClientError, match="HTTP 403"):
                client.peer_complete({"id": ticket["id"],
                                      "state": "done", "status": "ok",
                                      "peer": "p"})
            client.wait(ticket["id"], timeout=30)

    def test_leased_jobs_occupy_tenant_running_quota(self, tmp_path):
        tenants = _tenants_file(
            tmp_path, '[ci]\nkey = "ci-key"\nmax_running = 1\n'
                      '[other]\nkey = "other-key"\n')
        runner = GatedRunner()
        with _thread_service(workers=1, runner=runner, tenants=tenants,
                             cluster_key="ck") as handle:
            other = ServiceClient(port=handle.port,
                                  api_key="other-key")
            ci = ServiceClient(port=handle.port, api_key="ci-key")
            peer = ServiceClient(port=handle.port, cluster_key="ck")
            other.submit(_src("filler"))    # occupies the only worker
            assert runner.started.wait(timeout=10)
            victim = ci.submit(_src("victim"))
            jobs = peer.peer_claim(limit=1, peer="replica-a")
            assert jobs[0]["id"] == victim["id"]
            # The lease counts against ci's cluster-wide running cap.
            with pytest.raises(ServiceSaturated):
                ci.submit(_src("over-cap"))
            peer.peer_complete({"id": victim["id"], "state": "done",
                                "status": "ok", "peer": "replica-a"})
            ci.submit(_src("after"))        # the complete freed a slot
            runner.gate.set()


# ======================================================================
# Client backoff (satellite: full jitter honouring Retry-After)
# ======================================================================
class TestSubmitRetryJitter:
    class _Flaky(ServiceClient):
        def __init__(self, failures: int, retry_after: float = 2.0):
            super().__init__()
            self.failures = failures
            self.retry_after = retry_after
            self.calls = 0

        def submit(self, spec):
            self.calls += 1
            if self.calls <= self.failures:
                raise ServiceSaturated("saturated",
                                       retry_after=self.retry_after)
            return {"id": "j000001", "state": "queued"}

    def test_backoff_windows_grow_from_retry_after(self):
        client = self._Flaky(failures=3, retry_after=2.0)
        windows = []

        def fake_random(low, high):
            windows.append((low, high))
            return high                    # worst case: full window

        slept = []
        ticket = client.submit_retry({}, max_sleep=10.0,
                                     _sleep=slept.append,
                                     _random=fake_random)
        assert ticket["id"] == "j000001"
        # Full jitter windows: [0, hint * 2^n] capped at max_sleep.
        assert windows == [(0.0, 2.0), (0.0, 4.0), (0.0, 8.0)]
        assert slept == [2.0, 4.0, 8.0]

    def test_window_cap_and_exhaustion(self):
        client = self._Flaky(failures=99, retry_after=8.0)
        windows = []
        with pytest.raises(ServiceSaturated):
            client.submit_retry({}, attempts=4, max_sleep=10.0,
                                _sleep=lambda s: None,
                                _random=lambda low, high:
                                windows.append((low, high)) or 0.0)
        assert windows == [(0.0, 8.0), (0.0, 10.0), (0.0, 10.0)]
        assert client.calls == 4

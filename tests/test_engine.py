"""Batch analysis engine: cache keys, caching, pool dispatch, timeouts."""

import dataclasses

import pytest

from repro.analysis import Analysis
from repro.engine import (AnalysisEngine, AnalysisJob, EngineMetrics,
                          ResultCache)
from repro.errors import ILPTimeoutError
from repro.hw import i960kb
from repro.programs import get_benchmark

SOURCE = """
int data[8];
int tally(int n) {
    int i; int s; s = 0;
    for (i = 0; i < 8; i++) {
        if (data[i] > 0) { s += 2; } else { s += 1; }
    }
    return s;
}
"""


def _analysis(machine=None):
    analysis = Analysis(SOURCE, entry="tally", machine=machine)
    analysis.auto_bound_loops()
    analysis.add_constraint("(x4 = 8 & x5 = 0) | (x4 = 0 & x5 = 8)")
    return analysis


def _job(name="tally", machine=None):
    return AnalysisJob(name=name, source=SOURCE, entry="tally",
                       machine=machine, auto_bounds=True,
                       constraints=(
                           ("(x4 = 8 & x5 = 0) | (x4 = 0 & x5 = 8)",
                            None),))


class TestCacheKeys:
    def test_set_key_stable_across_rebuilds(self, tmp_path):
        cache = ResultCache(tmp_path)
        machine = i960kb()
        keys = []
        for _ in range(2):
            tasks = _analysis(machine).set_tasks()
            keys.append([cache.set_key(task.signature(),
                                       machine.fingerprint(), "simplex")
                         for task in tasks])
        assert keys[0] == keys[1]
        assert len(set(keys[0])) == len(keys[0])

    def test_machine_parameter_changes_set_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = i960kb()
        slower = dataclasses.replace(base, miss_penalty=base.miss_penalty + 1)
        task = _analysis(base).set_tasks()[0]
        assert (cache.set_key(task.signature(), base.fingerprint(), "simplex")
                != cache.set_key(task.signature(), slower.fingerprint(),
                                 "simplex"))

    def test_backend_changes_set_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        machine = i960kb()
        task = _analysis(machine).set_tasks()[0]
        signature = task.signature()
        assert (cache.set_key(signature, machine.fingerprint(), "simplex")
                != cache.set_key(signature, machine.fingerprint(), "exact"))

    def test_job_key_stable_and_machine_sensitive(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert (cache.job_key(_job().fingerprint())
                == cache.job_key(_job().fingerprint()))
        slower = dataclasses.replace(i960kb(), miss_penalty=99)
        assert (cache.job_key(_job().fingerprint())
                != cache.job_key(_job(machine=slower).fingerprint()))

    def test_source_change_changes_job_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        other = dataclasses.replace(_job(), source=SOURCE + "\n// v2")
        assert (cache.job_key(_job().fingerprint())
                != cache.job_key(other.fingerprint()))


class TestResultCache:
    def test_set_layer_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        machine = i960kb()
        analysis = _analysis(machine)
        task = analysis.set_tasks()[0]
        from repro.analysis.setsolve import solve_set

        result = solve_set(task)
        key = cache.set_key(task.signature(), machine.fingerprint(),
                            "simplex")
        assert cache.get_set(key) is None
        cache.put_set(key, result)
        loaded = cache.get_set(key)
        assert (loaded.worst, loaded.best) == (result.worst, result.best)
        assert loaded.worst_counts == result.worst_counts
        assert loaded.stats.lp_calls == result.stats.lp_calls

    def test_job_layer_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = _analysis().estimate()
        key = cache.job_key(_job().fingerprint())
        assert cache.get_report(key) is None
        cache.put_report(key, report)
        loaded = cache.get_report(key)
        assert loaded.interval == report.interval
        assert len(loaded.set_results) == len(report.set_results)
        assert loaded.sets_pruned == report.sets_pruned

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = _analysis().estimate()
        cache.put_report(cache.job_key("a"), report)
        cache.put_set(cache.set_key("sig", "m", "simplex"),
                      report.set_results[0])
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.set_entries == 1 and stats.job_entries == 1
        assert stats.total_bytes > 0
        assert cache.clear() == 2
        assert cache.stats().entries == 0


class TestEviction:
    @staticmethod
    def _fill(cache, report, count, start=0):
        """Put `count` reports under distinct keys with deterministic
        mtimes (oldest first), bypassing wall-clock granularity."""
        import os

        keys = [cache.job_key(f"job-{start + i}") for i in range(count)]
        for i, key in enumerate(keys):
            cache.put_report(key, report)
            tick = (start + i + 1) * 1_000_000_000
            os.utime(cache._path(key), ns=(tick, tick))
        return keys

    def test_max_entries_evicts_oldest(self, tmp_path):
        report = _analysis().estimate()
        keys = self._fill(ResultCache(tmp_path), report, 4)
        capped = ResultCache(tmp_path, max_entries=3)
        newest = self._fill(capped, report, 1, start=4)[0]
        assert capped.evictions == 2               # 5 entries -> 3
        assert capped.stats().entries == 3
        assert capped.get_report(keys[0]) is None  # oldest two gone
        assert capped.get_report(keys[1]) is None
        assert capped.get_report(keys[3]) is not None
        assert capped.get_report(newest) is not None

    def test_read_touch_protects_entry(self, tmp_path):
        import os

        report = _analysis().estimate()
        keys = self._fill(ResultCache(tmp_path), report, 3)
        capped = ResultCache(tmp_path, max_entries=3)
        # Reading keys[0] marks it recently used...
        assert capped.get_report(keys[0]) is not None
        tick = 10 * 1_000_000_000
        os.utime(capped._path(keys[0]), ns=(tick, tick))
        self._fill(capped, report, 1, start=20)
        # ...so the LRU victim is keys[1], not the touched keys[0].
        assert capped.get_report(keys[0]) is not None
        assert capped.get_report(keys[1]) is None

    def test_max_bytes_cap(self, tmp_path):
        report = _analysis().estimate()
        probe = ResultCache(tmp_path)
        self._fill(probe, report, 1)
        entry_bytes = probe.stats().total_bytes
        capped = ResultCache(tmp_path, max_bytes=2 * entry_bytes)
        self._fill(capped, report, 3, start=1)
        stats = capped.stats()
        assert stats.total_bytes <= 2 * entry_bytes
        assert stats.entries == 2
        assert capped.evictions == 2

    def test_lifetime_evictions_persist_in_stats(self, tmp_path):
        report = _analysis().estimate()
        capped = ResultCache(tmp_path, max_entries=1)
        self._fill(capped, report, 3)
        assert capped.evictions == 2
        # A fresh cache object on the same root sees the lifetime total.
        fresh = ResultCache(tmp_path)
        stats = fresh.stats()
        assert stats.evictions == 2
        assert fresh.evictions == 0                # this object's own

    def test_uncapped_cache_never_evicts(self, tmp_path):
        report = _analysis().estimate()
        cache = ResultCache(tmp_path)
        self._fill(cache, report, 4)
        assert cache.evictions == 0
        assert cache.stats().entries == 4


class TestEngineRuns:
    def test_cached_rerun_identical(self, tmp_path):
        jobs = [AnalysisJob.from_benchmark("check_data"), _job()]
        cold = AnalysisEngine(workers=1, cache_dir=tmp_path).run(jobs)
        assert [r.status for r in cold] == ["ok", "ok"]
        warm_engine = AnalysisEngine(workers=1, cache_dir=tmp_path)
        warm = warm_engine.run(jobs)
        assert all(r.cache_hit for r in warm)
        for before, after in zip(cold, warm):
            assert after.report.interval == before.report.interval
        assert warm_engine.metrics.hit_rate("job") == 1.0

    def test_engine_matches_serial_estimate(self, tmp_path):
        serial = get_benchmark("check_data").make_analysis().estimate()
        for grain in ("job", "set"):
            engine = AnalysisEngine(workers=2)
            result = engine.run(
                [AnalysisJob.from_benchmark("check_data")], grain=grain)[0]
            assert result.ok
            assert result.report.interval == serial.interval
            assert ([(s.index, s.worst, s.best)
                     for s in result.report.set_results]
                    == [(s.index, s.worst, s.best)
                        for s in serial.set_results])

    def test_failed_job_does_not_poison_batch(self):
        bad = AnalysisJob(name="bad", source="int f() { return 1; }",
                          entry="missing")
        good = AnalysisJob.from_benchmark("check_data")
        engine = AnalysisEngine(workers=1)
        results = engine.run([bad, good])
        assert results[0].status == "failed"
        assert not results[0].ok and results[0].report is None
        assert "missing" in results[0].error
        assert results[1].ok
        assert engine.metrics.jobs == {"ok": 1, "partial": 0, "failed": 1}

    def test_parallel_estimate_matches_serial(self):
        serial = _analysis().estimate()
        parallel = _analysis().estimate(parallel=2)
        assert parallel.interval == serial.interval
        assert ([(s.index, s.worst) for s in parallel.set_results]
                == [(s.index, s.worst) for s in serial.set_results])


class TestTimeouts:
    def test_problem_solve_raises_typed_timeout(self):
        worst, _best = _analysis().set_tasks()[0].problems()
        with pytest.raises(ILPTimeoutError):
            worst.solve(max_iterations=1)

    def test_deadline_timeout(self):
        worst, _best = _analysis().set_tasks()[0].problems()
        with pytest.raises(ILPTimeoutError):
            worst.solve(timeout=0.0)

    def test_set_timeout_degrades_to_sound_partial_bound(self):
        exact = _analysis().estimate()
        partial = _analysis().estimate(set_timeout=0.0)
        assert partial.partial is True
        assert any(r.timed_out for r in partial.set_results)
        # The relaxation fallback only ever widens the interval.
        assert partial.worst >= exact.worst
        assert partial.best <= exact.best

    def test_partial_results_are_not_cached(self, tmp_path):
        job = _job()
        engine = AnalysisEngine(workers=1, cache_dir=tmp_path,
                                set_timeout=0.0)
        first = engine.run([job])[0]
        assert first.status == "partial"
        retry = AnalysisEngine(workers=1, cache_dir=tmp_path).run([job])[0]
        assert not retry.cache_hit
        assert retry.status == "ok"


class TestMetrics:
    def test_json_round_trip(self, tmp_path):
        engine = AnalysisEngine(workers=1, cache_dir=tmp_path)
        engine.run([_job()])
        path = tmp_path / "metrics.json"
        engine.metrics.dump(path)
        loaded = EngineMetrics.load(path)
        redump, original = loaded.to_dict(), engine.metrics.to_dict()
        redump["registry"].pop("_ts", None)    # fresh capture stamp
        original["registry"].pop("_ts", None)
        assert redump == original
        assert loaded.sets_solved >= 1
        assert "solve" in loaded.stage_seconds

    def test_render_mentions_stages_and_jobs(self):
        engine = AnalysisEngine(workers=1)
        engine.run([_job()])
        text = engine.metrics.render()
        assert "solve" in text and "jobs: 1 ok" in text

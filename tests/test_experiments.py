"""Tests for the experiment drivers (table shape, soundness, CLI) and
the DSP3210 portability target (paper §VII)."""

import pytest

from repro.experiments import (Experiments, context_study,
                               enumeration_blowup, render_table1,
                               render_table2, render_table3)
from repro.hw import dsp3210, i960kb
from repro.programs import all_benchmarks, get_benchmark
from repro.sim import measure_bounds

#: A two-routine subset keeps these integration tests quick.
SUBSET = {name: bench for name, bench in all_benchmarks().items()
          if name in ("check_data", "piksrt")}


@pytest.fixture(scope="module")
def experiments():
    return Experiments(benchmarks=SUBSET)


class TestTables:
    def test_table1_rows(self, experiments):
        rows = experiments.table1()
        assert [r.function for r in rows] == ["check_data", "piksrt"]
        assert rows[0].sets == 2
        text = render_table1(rows)
        assert "Lines" in text and "check_data" in text

    def test_table2_rows_sound(self, experiments):
        rows = experiments.table2()
        for row in rows:
            assert row.sound
            assert row.pessimism[0] >= -1e-9
            assert row.pessimism[1] >= -1e-9
        assert "Calculated Bound" in render_table2(rows)

    def test_table3_rows_sound(self, experiments):
        rows = experiments.table3()
        for row in rows:
            assert row.sound
        assert "Measured Bound" in render_table3(rows)

    def test_reports_cached(self, experiments):
        first = experiments.report("check_data")
        assert experiments.report("check_data") is first


class TestAblationDrivers:
    def test_enumeration_blowup_rows(self):
        rows = enumeration_blowup(bounds=(2, 3), max_paths=10_000)
        assert rows[0].explicit_paths == 16
        assert rows[1].explicit_paths == 64
        assert all(r.worst_agrees for r in rows)
        assert all(r.ipet_lp_calls == 2 for r in rows)

    def test_enumeration_blowup_detects_explosion(self):
        rows = enumeration_blowup(bounds=(10,), max_paths=1000)
        assert rows[0].explicit_paths is None

    def test_context_study_orders(self):
        merged, ctx = context_study()
        assert ctx.worst < merged.worst


class TestCLI:
    def test_main_table1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "dhry" in out


class TestDSP3210Port:
    """Paper §VII: 'we have completed a port for the AT&T DSP3210
    processor ... to bound the running times of processes for use in
    scheduling.'"""

    @pytest.mark.parametrize("name", ["check_data", "fft", "recon"])
    def test_bounds_sound_on_dsp(self, name):
        bench = get_benchmark(name)
        report = bench.make_analysis(machine=dsp3210()).estimate()
        measured = measure_bounds(bench.program, bench.entry,
                                  bench.best_data, bench.worst_data,
                                  machine=dsp3210())
        assert report.encloses(measured.interval)

    def test_fp_code_relatively_cheaper_on_dsp(self):
        """The DSP's single-cycle FP pipeline shifts the balance: the
        FP-heavy fft speeds up far more than the integer-only
        check_data when moving from the i960KB."""
        fft = get_benchmark("fft")
        check = get_benchmark("check_data")
        ratio = {}
        for bench in (fft, check):
            i960 = bench.make_analysis(machine=i960kb()).estimate()
            dsp = bench.make_analysis(machine=dsp3210()).estimate()
            # Compare best-case bounds: both assume all-hit fetches, so
            # the ratio isolates the execution-unit timing difference.
            ratio[bench.name] = i960.best / dsp.best
        assert ratio["fft"] > 1.5 * ratio["check_data"]

    def test_dsp_has_deterministic_fetches(self):
        machine = dsp3210()
        assert machine.num_lines == 0
        bench = get_benchmark("jpeg_fdct_islow")
        report = bench.make_analysis(machine=machine).estimate()
        # Without a cache the best/worst gap collapses to pipeline
        # uncertainty only (conservative entry stalls).
        assert report.worst - report.best < 0.15 * report.worst

"""Tests for the companion (non-Table-I) benchmark suite.

Each routine gets the same treatment as the paper's suite — functional
checks plus the full soundness chain — and doubles as broader exercise
for auto-bounding and path extraction.
"""

import pytest

from repro import calculated_bound, measure_bounds
from repro.analysis import Analysis, worst_case_path
from repro.programs import all_benchmarks, extra_benchmarks
from repro.sim import Interpreter

EXTRAS = extra_benchmarks()
NAMES = sorted(EXTRAS)


class TestRegistry:
    def test_five_extras(self):
        assert len(EXTRAS) == 5

    def test_disjoint_from_table1(self):
        assert not set(EXTRAS) & set(all_benchmarks())


@pytest.mark.parametrize("name", NAMES)
class TestSoundness:
    def test_estimate_encloses_calculated_and_measured(self, name):
        bench = EXTRAS[name]
        report = bench.make_analysis().estimate()
        calc = calculated_bound(bench.program, bench.entry,
                                bench.best_data, bench.worst_data)
        measured = measure_bounds(bench.program, bench.entry,
                                  bench.best_data, bench.worst_data)
        assert report.best <= calc.best <= calc.worst <= report.worst
        assert report.encloses(measured.interval)

    def test_first_lp_integral(self, name):
        report = EXTRAS[name].make_analysis().estimate()
        assert report.all_first_relaxations_integral

    def test_worst_path_extractable(self, name):
        analysis = EXTRAS[name].make_analysis()
        trace = worst_case_path(analysis)
        assert trace.blocks[0] == 1


class TestFunctional:
    def test_bubble_sorts(self):
        bench = EXTRAS["bubble"]
        interp = Interpreter(bench.program)
        interp.set_global("arr", [5, 2, 9, 1, 7, 3, 8, 0, 6, 4, 11, 10])
        interp.run("bubble")
        assert interp.get_global("arr") == list(range(12))

    def test_binsearch_expected_values(self):
        bench = EXTRAS["binsearch"]
        assert bench.run(bench.best_data).value == 31
        assert bench.run(bench.worst_data).value == -1

    def test_binsearch_finds_every_key(self):
        bench = EXTRAS["binsearch"]
        table = [2 * i for i in range(64)]
        for idx in (0, 1, 31, 62, 63):
            from repro.sim import Dataset

            result = bench.run(Dataset(globals={"table": table,
                                                "key": 2 * idx}))
            assert result.value == idx

    def test_matmul_against_numpy(self):
        import numpy as np

        bench = EXTRAS["matmul"]
        rng = np.random.default_rng(3)
        a = rng.integers(-9, 10, (8, 8))
        b = rng.integers(-9, 10, (8, 8))
        interp = Interpreter(bench.program)
        interp.set_global("A", a.flatten().tolist())
        interp.set_global("B", b.flatten().tolist())
        interp.run("matmul")
        got = np.array(interp.get_global("C")).reshape(8, 8)
        assert (got == a @ b).all()

    def test_crc_known_properties(self):
        bench = EXTRAS["crc8"]
        zero = bench.run(bench.best_data).value
        assert zero == 0                      # CRC of all-zero is 0
        ones = bench.run(bench.worst_data).value
        assert 0 <= ones <= 255 and ones != 0

    def test_fir_dc_response(self):
        bench = EXTRAS["fir"]
        result = bench.run(bench.worst_data)
        out = Interpreter(bench.program)
        out.set_global("coeff", [0.0625] * 16)
        out.set_global("input", [1.0] * 80)
        out.run("fir")
        values = out.get_global("output")
        # Sum of 16 taps of 1/16 over a constant input is exactly 1.
        assert all(v == pytest.approx(1.0) for v in values)


class TestAutoBounds:
    @pytest.mark.parametrize("name", ["matmul", "crc8", "fir"])
    def test_counted_kernels_fully_auto_bounded(self, name):
        bench = EXTRAS[name]
        analysis = Analysis(bench.program, entry=bench.entry)
        analysis.auto_bound_loops()
        assert analysis.loops_needing_bounds() == []
        manual = bench.make_analysis().estimate()
        assert analysis.estimate().interval == manual.interval

    def test_data_dependent_loops_not_auto_bounded(self):
        # binsearch's while loop needs the user's log2 insight.
        bench = EXTRAS["binsearch"]
        analysis = Analysis(bench.program, entry="binsearch")
        analysis.auto_bound_loops()
        assert len(analysis.loops_needing_bounds()) == 1

    def test_bubble_early_exit_derives_upper_only(self):
        bench = EXTRAS["bubble"]
        analysis = Analysis(bench.program, entry="bubble")
        derived = analysis.auto_bound_loops()
        outer = next(d for d in derived if not d.exact)
        assert outer.lo == 0 and outer.hi == 11

"""Cluster flight recorder: trace propagation, profiling, trajectories.

The tentpole invariants of the flight-recorder layer:

* a :class:`TraceContext` survives every hop — wire dict, HTTP header,
  journal frame, pickle boundary — and stamps every span of a job,
  including spans produced by a *peer replica* that stole the job;
* the statistical profiler aggregates deterministically, is idempotent
  to start/stop, and measures its own overhead;
* the perf-trajectory store is append-only and its gate fails on wall
  regressions and on any bit-wise bound difference.

The end-to-end half reuses the deterministic gated-runner embedding of
``tests/test_durable.py``: the owner's worker is held hostage so the
idle peer must steal, while the peer runs the *real* engine so genuine
solver spans journal home.
"""

import json
import threading
import time

import pytest

from repro.engine.jobs import JobResult
from repro.obs import (EventBus, MetricsRegistry, SamplingProfiler,
                       TraceContext, Tracer, assemble_trees, build_tree,
                       collapse_frame, gate_runs, group_by_trace,
                       host_fingerprint, orphan_spans, render_tree)
from repro.obs.flight import TrajectoryError, TrajectoryStore
from repro.obs.tracediff import diff_traces
from repro.service import (ClientError, JobSpec, ServiceClient,
                           ServiceThread)
from repro.service.durable.journal import JobJournal


def _thread_service(**kwargs):
    kwargs.setdefault("executor", "thread")
    return ServiceThread(**kwargs)


def _src(name, **extra):
    return {"name": name, "source": "int f() { return 1; }",
            "entry": "f", **extra}


# ======================================================================
# TraceContext
# ======================================================================
class TestTraceContext:
    def test_round_trips(self):
        context = TraceContext.new(tenant="ci", benchmark="des")
        assert TraceContext.from_header(context.to_header()) == context
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_child_keeps_trace_id(self):
        parent = TraceContext.new()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_span_id != parent.parent_span_id

    def test_malformed_header_rejected(self):
        for bad in ("", "nothex-zz", "deadbeef-xyz;k=v", "a;b;c=;=d"):
            with pytest.raises(ValueError):
                TraceContext.from_header(bad)

    def test_malformed_dict_rejected(self):
        with pytest.raises(ValueError):
            TraceContext.from_dict({"trace_id": "NOT HEX"})
        with pytest.raises(ValueError):
            TraceContext.from_dict("not a mapping")

    def test_jobspec_wire_and_journal_round_trip(self):
        context = TraceContext.new()
        spec = JobSpec.from_dict({**_src("traced"),
                                  "trace": context.to_dict()})
        assert spec.trace == context
        again = JobSpec.from_dict(spec.to_dict())
        assert again.trace == context
        # The engine lowering deliberately drops the trace context:
        # it must never reach cache keys or analysis fingerprints.
        job = spec.to_analysis_job()
        assert "trace" not in vars(job)


class TestTracerContext:
    def test_records_stamped_with_trace_id(self):
        context = TraceContext.new()
        tracer = Tracer(context=context)
        with tracer.span("outer", cat="t"):
            with tracer.span("inner", cat="t"):
                pass
        records = tracer.records()
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert all(r["trace"] == context.trace_id for r in records)
        # Only depth-0 spans link to the submitter's parent span.
        parents = [r.get("parent") for r in records]
        assert parents == [None, context.parent_span_id]

    def test_maxlen_bounds_the_ring(self):
        tracer = Tracer(maxlen=4)
        for n in range(10):
            with tracer.span(f"s{n}", cat="t"):
                pass
        assert len(tracer.records()) == 4
        assert tracer.records()[-1]["name"] == "s9"


# ======================================================================
# Profiler
# ======================================================================
class TestProfiler:
    def test_ingest_folds_deterministically(self):
        profiler = SamplingProfiler()
        assert profiler.ingest([("a", "b"), ("a", "b"), ("a",)]) == 3
        assert profiler.ingest([("a", "b"), ()]) == 1
        assert profiler.folds() == {("a", "b"): 3, ("a",): 1}
        assert profiler.samples == 2          # one per non-empty batch
        assert profiler.collapsed() == ["a;b 3", "a 1"]

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(hz=200.0)
        profiler.start()
        thread = profiler._thread
        profiler.start()                      # no second thread
        assert profiler._thread is thread
        profiler.stop()
        profiler.stop()                       # no-op
        assert not profiler.running

    def test_samples_own_process_threads(self):
        profiler = SamplingProfiler(hz=500.0)
        release = threading.Event()
        ready = threading.Event()

        def camp():
            ready.set()
            release.wait(timeout=10)

        worker = threading.Thread(target=camp, name="campsite")
        worker.start()
        ready.wait(timeout=10)
        try:
            with profiler:
                deadline = time.monotonic() + 5.0
                while (profiler.samples == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
        finally:
            release.set()
            worker.join()
        assert profiler.samples > 0
        assert any("camp" in line for line in profiler.collapsed())
        # Self-accounting: the sampler measured its own cost, and at
        # this tiny duty cycle it is nowhere near the 5% budget.
        assert 0.0 < profiler.overhead_fraction < 0.5

    def test_fake_frames_fn_and_speedscope_shape(self):
        import sys

        frame = sys._getframe()
        profiler = SamplingProfiler(frames_fn=lambda: {1: frame})
        assert profiler.sample_once() == 1
        doc = profiler.to_speedscope(name="unit")
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["name"] == "unit"
        assert len(profile["samples"]) == len(profile["weights"]) == 1
        labels = [f["name"] for f in doc["shared"]["frames"]]
        assert any("test_flight.py" in label for label in labels)
        stack = collapse_frame(frame)
        assert stack[-1].endswith("test_fake_frames_fn_and_"
                                  "speedscope_shape")

    def test_reset_clears_aggregate(self):
        profiler = SamplingProfiler()
        profiler.ingest([("a",)])
        profiler.reset()
        assert profiler.folds() == {}
        assert profiler.samples == 0


# ======================================================================
# Trace reassembly
# ======================================================================
def _span(name, ts, dur, pid=1, tid=1, trace="aa11", cat="t", **args):
    return {"name": name, "cat": cat, "ts": ts, "dur": dur, "pid": pid,
            "tid": tid, "depth": 0, "args": args, "trace": trace}


class TestReassembly:
    def test_containment_nesting_ignores_depth(self):
        events = [
            _span("child", 1.2, 0.2),
            _span("root", 1.0, 1.0),
            _span("grandchild", 1.25, 0.1),
            _span("sibling", 2.5, 0.3),
        ]
        roots = build_tree(list(group_by_trace(events)["aa11"]))
        assert [r.name for r in roots] == ["root", "sibling"]
        (child,) = roots[0].children
        assert child.name == "child"
        assert [n.name for n in child.children] == ["grandchild"]

    def test_lanes_split_by_pid_tid(self):
        events = [_span("a", 1.0, 1.0, pid=1),
                  _span("b", 1.1, 0.5, pid=2)]
        roots = build_tree(list(group_by_trace(events)["aa11"]))
        assert sorted(r.name for r in roots) == ["a", "b"]
        assert all(not r.children for r in roots)

    def test_chrome_events_microseconds_normalized(self):
        chrome = {"ph": "X", "name": "x", "cat": "t", "ts": 2_000_000,
                  "dur": 500_000, "pid": 1, "tid": 1,
                  "trace": "aa11", "args": {}}
        (node,) = group_by_trace([chrome])["aa11"]
        assert node.ts == 2.0 and node.dur == 0.5

    def test_assemble_and_orphans(self):
        events = [_span("mine", 1.0, 1.0),
                  _span("stray", 1.0, 1.0, trace="ff00")]
        trees = assemble_trees(events)
        assert set(trees) == {"aa11", "ff00"}
        assert trees["aa11"]["spans"] == 1
        orphans = orphan_spans(events, "aa11")
        assert [n.name for n in orphans] == ["stray"]
        lines = render_tree(trees["aa11"]["roots"])
        assert lines and "t:mine" in lines[0]


# ======================================================================
# Trajectory store and gate
# ======================================================================
class TestTrajectory:
    def test_append_only_and_latest(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        store.append("suite", 1.0, bounds={"des": (10, 20)})
        store.append("suite", 2.0, bounds={"des": (10, 20)})
        runs = store.runs("suite")
        assert [run["wall_seconds"] for run in runs] == [1.0, 2.0]
        assert all(run["host"] == host_fingerprint() for run in runs)
        assert store.latest("suite")["wall_seconds"] == 2.0
        assert store.latest("suite",
                            host="py=?|other")["wall_seconds"] == 2.0
        doc = json.loads(store.path("suite").read_text())
        assert doc["schema"] == 1 and doc["name"] == "suite"

    def test_bad_names_and_files_rejected(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        with pytest.raises(TrajectoryError):
            store.path("../escape")
        store.path("ok").write_text("not json{")
        with pytest.raises(TrajectoryError):
            store.load("ok")

    def test_gate_passes_identical_runs(self, tmp_path):
        store = TrajectoryStore(tmp_path)
        base = store.append("s", 1.0, bounds={"des": (10, 20)})
        cur = store.append("s", 1.1, bounds={"des": (10, 20)})
        problems, notes = gate_runs(base, cur)
        assert problems == []
        assert any("within" in note for note in notes)

    def test_gate_fails_on_wall_regression(self):
        problems, _ = gate_runs(
            {"host": "h", "wall_seconds": 1.0},
            {"host": "h", "wall_seconds": 1.6}, max_regress=0.5)
        assert any("regressed" in p for p in problems)

    def test_gate_fails_on_bound_drift(self):
        problems, _ = gate_runs(
            {"host": "h", "wall_seconds": 1.0,
             "bounds": {"des": [10, 20]}},
            {"host": "h", "wall_seconds": 1.0,
             "bounds": {"des": [10, 21]}})
        assert any("bit-identical" in p for p in problems)

    def test_gate_notes_host_and_coverage_changes(self):
        problems, notes = gate_runs(
            {"host": "a", "wall_seconds": 1.0,
             "bounds": {"des": [1, 2]}},
            {"host": "b", "wall_seconds": 1.0,
             "bounds": {"fft": [3, 4]}})
        assert problems == []
        assert any("host fingerprint changed" in n for n in notes)
        assert any("baseline-only" in n for n in notes)
        assert any("no baseline" in n for n in notes)


# ======================================================================
# Satellites: journal inspection, bus drop accounting
# ======================================================================
class TestJournalInspect:
    def test_inspect_reports_duplicates_and_tail(self, tmp_path):
        spec = JobSpec.from_dict(_src("a")).to_dict()
        journal = JobJournal(tmp_path)
        journal.open()
        journal.append("submit", id="j000001", spec=spec, tenant=None)
        journal.append("start", id="j000001")
        journal.append("start", id="j000001")      # duplicate frame
        journal.close()
        wal = tmp_path / "journal.wal"
        wal.write_bytes(wal.read_bytes() + b"\x07garbage")

        state = JobJournal(tmp_path).inspect()
        assert state.records == 3
        assert state.duplicates == 1
        assert state.tail_dropped
        assert state.jobs["j000001"]["state"] == "running"
        # Read-only: inspect() left no append handle behind and the
        # WAL (garbage tail included) is bit-for-bit untouched.
        assert wal.read_bytes().endswith(b"\x07garbage")


class TestBusDropAccounting:
    def test_per_subscriber_drop_counts(self):
        bus = EventBus()
        slow = bus.subscribe(maxlen=1, name="slow")
        bus.subscribe(maxlen=64, name="fast")
        for n in range(5):
            bus.publish("tick", n=n)
        assert bus.drop_counts() == {"slow": 4}
        assert bus.dropped == 4
        # Closed subscribers keep their tally under their name.
        bus.publish("tick", n=99)
        slow.close()
        bus.publish("tick", n=100)
        assert bus.drop_counts() == {"slow": 5}


# ======================================================================
# End to end: traced service, profiler endpoint, peer stealing
# ======================================================================
class GatedRunner:
    """A fake engine runner the test can hold and release."""

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.payloads = []
        self._lock = threading.Lock()

    def __call__(self, payload):
        with self._lock:
            self.payloads.append(payload)
        self.started.set()
        if not self.gate.wait(timeout=30):
            raise TimeoutError("test never released the gate")
        return JobResult(payload[0].name, "ok")

    @property
    def names(self):
        with self._lock:
            return [payload[0].name for payload in self.payloads]


def _traced_run(client, spec, context):
    ticket = client.submit(spec, trace=context)
    assert ticket["trace_id"] == context.trace_id
    record = client.wait(ticket["id"], timeout=60)
    assert record["state"] == "done"
    assert record["trace_id"] == context.trace_id
    return client.trace(ticket["id"])


class TestServiceFlight:
    def test_local_job_trace_has_no_orphans(self):
        context = TraceContext.new(suite="flight")
        with _thread_service(workers=1) as handle:
            client = ServiceClient(port=handle.port)
            doc = _traced_run(client, _src("local"), context)
        events = doc["traceEvents"]
        assert doc["repro"]["trace_id"] == context.trace_id
        assert orphan_spans(events, context.trace_id) == []
        names = {e["name"] for e in events if e.get("ph") == "X"}
        # Scheduler envelope plus real worker pipeline/solver spans.
        assert {"service.job", "solve", "set.worst"} <= names

    def test_trace_endpoint_unknown_job_404(self):
        with _thread_service(workers=1) as handle:
            client = ServiceClient(port=handle.port)
            with pytest.raises(ClientError, match="HTTP 404"):
                client.trace("j999999")

    def test_profilez_404_without_profiler(self):
        with _thread_service(workers=1) as handle:
            client = ServiceClient(port=handle.port)
            with pytest.raises(ClientError, match="HTTP 404"):
                client.profilez()

    def test_profilez_serves_speedscope_and_collapsed(self):
        with _thread_service(workers=1,
                             profile_hz=400.0) as handle:
            client = ServiceClient(port=handle.port)
            client.wait(client.submit(_src("warm"))["id"], timeout=60)
            deadline = time.monotonic() + 10.0
            doc = client.profilez()
            while not doc["samples"] and time.monotonic() < deadline:
                time.sleep(0.05)
                doc = client.profilez()
            assert doc["samples"] > 0
            assert doc["speedscope"]["profiles"][0]["type"] == "sampled"
            folds = client.profilez(format="collapsed")["folds"]
            assert folds and all(" " in line for line in folds)
            snapshot = client.metricz()
        registry = MetricsRegistry.from_snapshot(snapshot)
        assert registry.value("service.profiler.samples") > 0

    def test_stolen_job_reassembles_under_submitter_trace(self):
        owner_runner = GatedRunner()
        context = TraceContext.new(suite="flight")
        with _thread_service(workers=1, runner=owner_runner,
                             cluster_key="fleet-secret",
                             lease_seconds=30.0) as owner:
            with _thread_service(workers=2,
                                 peers=[f"127.0.0.1:{owner.port}"],
                                 cluster_key="fleet-secret",
                                 balance_interval=0.1) as stealer:
                client = ServiceClient(port=owner.port)
                blocker = client.submit(_src("blocker"))
                assert owner_runner.started.wait(timeout=10)
                # The owner's only worker is hostage; the idle peer
                # must steal the traced job and run the real engine.
                victim = client.submit(_src("victim"),
                                       trace=context)
                record = client.wait(victim["id"], timeout=60)
                assert record["state"] == "done"
                owner_runner.gate.set()
                client.wait(blocker["id"], timeout=60)
                doc = client.trace(victim["id"])
                stealer_metrics = MetricsRegistry.from_snapshot(
                    ServiceClient(port=stealer.port).metricz())

        assert stealer_metrics.value("service.peer.stolen") >= 1
        assert "victim" not in owner_runner.names
        events = doc["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        # The invariant: one tree, the submitter's trace id on every
        # span, zero orphans — even though every span was produced on
        # the thief replica.
        assert doc["repro"]["trace_id"] == context.trace_id
        assert orphan_spans(events, context.trace_id) == []
        trees = assemble_trees(events)
        assert set(trees) == {context.trace_id}
        assert trees[context.trace_id]["spans"] == len(spans)
        names = {e["name"] for e in spans}
        assert {"service.job", "solve", "set.worst"} <= names

    def test_stolen_trace_structurally_matches_local_run(self):
        """``obs diff-trace`` of an owner-run vs a peer-stolen run of
        the same job is structurally empty: same spans, same counts,
        same solver effort — only wall time may differ."""
        local_context = TraceContext.new()
        with _thread_service(workers=1) as handle:
            client = ServiceClient(port=handle.port)
            local = _traced_run(client, _src("probe"), local_context)

        owner_runner = GatedRunner()
        stolen_context = TraceContext.new()
        with _thread_service(workers=1, runner=owner_runner,
                             cluster_key="fleet-secret") as owner:
            with _thread_service(workers=2,
                                 peers=[f"127.0.0.1:{owner.port}"],
                                 cluster_key="fleet-secret",
                                 balance_interval=0.1):
                client = ServiceClient(port=owner.port)
                client.submit(_src("blocker"))
                assert owner_runner.started.wait(timeout=10)
                stolen = _traced_run(client, _src("probe"),
                                     stolen_context)
                owner_runner.gate.set()
        assert "probe" not in owner_runner.names

        deltas = diff_traces(local["traceEvents"],
                             stolen["traceEvents"])
        changed = [d.key for d in deltas if d.changed]
        assert changed == []


class TestTenantMetrics:
    def test_submitted_completed_throttled_gauges(self, tmp_path):
        tenants = tmp_path / "tenants.json"
        tenants.write_text(json.dumps(
            {"ci": {"key": "s3cret", "max_queued": 1}}))
        runner = GatedRunner()
        with _thread_service(workers=1, runner=runner,
                             tenants=str(tenants)) as handle:
            client = ServiceClient(port=handle.port, api_key="s3cret")
            first = client.submit(_src("one"))
            assert runner.started.wait(timeout=10)
            second = client.submit(_src("two"))    # fills the quota
            from repro.service import ServiceSaturated
            with pytest.raises(ServiceSaturated):
                client.submit(_src("three"))       # throttled
            mid = MetricsRegistry.from_snapshot(client.metricz())
            runner.gate.set()
            client.wait(first["id"], timeout=60)
            client.wait(second["id"], timeout=60)
            done = MetricsRegistry.from_snapshot(client.metricz())

        assert mid.value("tenant.ci.submitted") == 2
        assert mid.value("tenant.ci.throttled_429") == 1
        assert mid.value("tenant.ci.queue_occupancy") == 1
        assert done.value("tenant.ci.completed") == 2
        assert done.value("tenant.ci.queue_occupancy") == 0


class TestJournalGauges:
    def test_metricz_exports_journal_health(self, tmp_path):
        with _thread_service(workers=1,
                             journal_dir=str(tmp_path)) as handle:
            client = ServiceClient(port=handle.port)
            client.wait(client.submit(_src("logged"))["id"],
                        timeout=60)
            snapshot = client.metricz()
        registry = MetricsRegistry.from_snapshot(snapshot)
        assert registry.value("service.journal.wal_bytes") > 0
        assert registry.value("service.journal"
                              ".frames_since_compaction") > 0
        # value() defaults missing metrics to 0, so pin presence on
        # the raw snapshot before trusting any >= 0 assertion.
        for q in (50, 95, 99):
            assert f"service.journal.fsync_seconds.p{q}" in snapshot
        assert "service.journal.replay.records" in snapshot
        assert registry.value("service.journal.replay.records") == 0

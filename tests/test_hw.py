"""Tests for the hardware model and the cycle-accurate simulator,
including the block-cost bracketing invariant (DESIGN.md invariant 5)."""

import pytest

from repro.cfg import build_cfg, build_cfgs
from repro.codegen import compile_source
from repro.codegen.isa import Op
from repro.hw import (ICache, Machine, block_cost, cost_table, i960kb,
                      lines_touched, no_cache, perfect_cache, pipeline_cycles)
from repro.sim import CycleModel, Dataset, Interpreter, measure_bounds


class TestMachine:
    def test_i960kb_geometry(self):
        machine = i960kb()
        assert machine.icache_bytes == 512
        assert machine.line_bytes == 16
        assert machine.num_lines == 32

    def test_set_mapping_wraps(self):
        machine = i960kb()
        assert machine.set_of(0) == machine.set_of(512)
        assert machine.set_of(16) == 1

    def test_no_cache_has_zero_lines(self):
        assert no_cache().num_lines == 0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Machine(icache_bytes=100, line_bytes=16)


class TestICache:
    def test_miss_then_hit(self):
        cache = ICache(i960kb())
        assert not cache.access(0)
        assert cache.access(4)       # same 16-byte line
        assert cache.access(12)
        assert not cache.access(16)  # next line

    def test_conflict_eviction(self):
        cache = ICache(i960kb())
        cache.access(0)
        assert not cache.access(512)   # same set, different tag
        assert not cache.access(0)     # evicted

    def test_flush(self):
        cache = ICache(i960kb())
        cache.access(0)
        cache.flush()
        assert not cache.access(0)

    def test_resident_is_side_effect_free(self):
        cache = ICache(i960kb())
        assert not cache.resident(0)
        cache.access(0)
        assert cache.resident(0)
        assert cache.resident(8)

    def test_disabled_cache_always_hits(self):
        cache = ICache(no_cache())
        assert cache.access(1234)


class TestBlockCost:
    def _cfg(self, source, name="f"):
        program = compile_source(source)
        return program, build_cfg(program, program.functions[name])

    def test_pipeline_sums_issue_cycles(self):
        program, cfg = self._cfg("int f(int a, int b) { return a + b; }")
        machine = i960kb()
        block = cfg.blocks[1]
        expect = sum(machine.issue(i.op) for i in block.instrs)
        assert pipeline_cycles(block.instrs, machine) == expect

    def test_load_use_stall_counted(self):
        # LD followed immediately by a use of its destination.
        # `g + g` loads g twice; the second load feeds the ADD directly.
        src = "int g; int f() { return g + g; }"
        program, cfg = self._cfg(src)
        machine = i960kb()
        block = cfg.blocks[1]
        ops = [i.op for i in block.instrs]
        assert Op.LD in ops
        base = sum(machine.issue(i.op) for i in block.instrs)
        assert pipeline_cycles(block.instrs, machine) >= base + \
            machine.load_use_stall

    def test_best_le_worst(self):
        src = """
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += i;
                return s;
            }
        """
        _, cfg = self._cfg(src)
        for cost in cost_table(cfg, i960kb()).values():
            assert cost.best <= cost.worst

    def test_perfect_cache_collapses_miss_penalty(self):
        src = "int f(int a) { return a * 2; }"
        _, cfg = self._cfg(src)
        cost = block_cost(cfg.blocks[1], perfect_cache())
        # Without miss penalty, worst = best + (entry stall only).
        assert cost.worst - cost.best <= perfect_cache().load_use_stall

    def test_lines_touched_counts_spanned_lines(self):
        src = "int f(int a) { return a + a * a - 3 * a; }"
        _, cfg = self._cfg(src)
        machine = i960kb()
        block = cfg.blocks[1]
        span_bytes = 4 * len(block.instrs)
        assert 1 <= lines_touched(block, machine) <= \
            span_bytes // machine.line_bytes + 1


PROGRAMS = {
    "loop": ("""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += i * i;
            return s;
        }""", ("f", 17)),
    "calls": ("""
        int g;
        int leaf(int x) { return x * 3; }
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += leaf(i);
            g = s;
            return s;
        }""", ("f", 9)),
    "branches": ("""
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) s += 5;
                else if (i % 3 == 1) s -= 2;
                else s *= 2;
            }
            return s;
        }""", ("f", 23)),
    "arrays": ("""
        int buf[32];
        int f(int n) {
            int i;
            for (i = 0; i < n; i++) buf[i] = buf[i] + i;
            int s = 0;
            for (i = 0; i < n; i++) s += buf[i];
            return s;
        }""", ("f", 30)),
}


class TestBracketingInvariant:
    """For every block: count*best <= simulated cycles <= count*worst."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_cycle_sim_within_static_bounds(self, name):
        source, (entry, arg) = PROGRAMS[name]
        program = compile_source(source)
        machine = i960kb()
        model = CycleModel(machine)
        model.record_per_instruction()
        model.flush()
        interp = Interpreter(program, cycle_model=model)
        result = interp.run(entry, arg)

        for cfg in build_cfgs(program).values():
            costs = cost_table(cfg, machine)
            for block_id, block in cfg.blocks.items():
                count = result.counts[block.start]
                observed = sum(model.per_index.get(i, 0)
                               for i in range(block.start, block.end))
                assert count * costs[block_id].best <= observed, \
                    f"{name}: block {block_id} best bound violated"
                assert observed <= count * costs[block_id].worst, \
                    f"{name}: block {block_id} worst bound violated"

    def test_total_cycles_positive(self):
        source, (entry, arg) = PROGRAMS["loop"]
        program = compile_source(source)
        model = CycleModel(i960kb())
        interp = Interpreter(program, cycle_model=model)
        assert interp.run(entry, arg).cycles > 0


class TestMeasurementProtocol:
    def test_cold_run_slower_than_warm(self):
        source, (entry, arg) = PROGRAMS["loop"]
        program = compile_source(source)
        data = Dataset(args=(arg,))
        measured = measure_bounds(program, entry, data, data)
        assert measured.best <= measured.worst
        # The flushed (worst) run pays at least one miss more.
        assert measured.worst > measured.best

    def test_dataset_globals_applied(self):
        src = "int data[4]; int f() { return data[0]; }"
        program = compile_source(src)
        measured = measure_bounds(
            program, "f",
            Dataset(globals={"data": [7, 0, 0, 0]}),
            Dataset(globals={"data": [9, 0, 0, 0]}))
        assert measured.best_result.value == 7
        assert measured.worst_result.value == 9

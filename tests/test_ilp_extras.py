"""Tests for the exact rational simplex and LP-format export/import."""

import numpy as np
import pytest

from repro.ilp import LinExpr, Problem, Status, read_lp, write_lp
from repro.ilp.exact import solve_lp_exact
from repro.ilp.simplex import solve_lp


class TestExactSimplex:
    def test_simple_maximize(self):
        result = solve_lp_exact([3, 1], [[1, 1], [1, -1]], ["<=", "<="],
                                [4, 2], maximize=True)
        assert result.status is Status.OPTIMAL
        assert result.objective == 10.0

    def test_exactness_on_fractional_optimum(self):
        # max x st 3x <= 1 -> x = 1/3 exactly.
        result = solve_lp_exact([1], [[3]], ["<="], [1], maximize=True)
        assert result.objective == pytest.approx(1 / 3, abs=1e-15)

    def test_infeasible(self):
        result = solve_lp_exact([1], [[1], [1]], ["<=", ">="], [1, 3])
        assert result.status is Status.INFEASIBLE

    def test_unbounded(self):
        result = solve_lp_exact([1], [[-1]], ["<="], [1], maximize=True)
        assert result.status is Status.UNBOUNDED

    def test_degenerate_equalities(self):
        matrix = [[1, -1, 0], [0, 1, -1], [1, 0, -1], [1, 0, 0]]
        result = solve_lp_exact([0, 0, 1], matrix,
                                ["==", "==", "==", "<="], [0, 0, 0, 7],
                                maximize=True)
        assert result.objective == 7.0

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_float_simplex(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        m = int(rng.integers(1, 7))
        matrix = rng.integers(-3, 4, size=(m, n)).tolist()
        rhs = rng.integers(0, 9, size=m).tolist()
        costs = rng.integers(-4, 5, size=n).tolist()
        senses = [str(rng.choice(["<=", ">=", "=="])) for _ in range(m)]
        matrix.append([1] * n)
        rhs.append(40)
        senses.append("<=")

        exact = solve_lp_exact(costs, matrix, senses, rhs)
        approx = solve_lp(costs, matrix, senses, rhs)
        assert exact.status is approx.status
        if exact.status is Status.OPTIMAL:
            assert exact.objective == pytest.approx(approx.objective,
                                                    abs=1e-6)

    def test_exact_backend_through_problem(self):
        p = Problem()
        x, y = p.add_var("x"), p.add_var("y")
        p.add(2 * x + 2 * y <= 5)
        p.maximize(x + y)
        result = p.solve(backend="exact")
        assert result.status is Status.OPTIMAL
        assert result.objective == 2.0

    def test_exact_backend_on_ipet_problem(self):
        from repro import Analysis

        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < 6; i++) s += i;
            return s;
        }
        """
        float_report = _analysis(src).estimate()
        exact_report = _analysis(src, backend="exact").estimate()
        assert float_report.interval == exact_report.interval


def _analysis(src, **kwargs):
    from repro import Analysis

    analysis = Analysis(src, entry="f", **kwargs)
    analysis.bound_loop(lo=6, hi=6)
    return analysis


class TestLPFormat:
    def sample(self):
        p = Problem("sample")
        x = p.add_var("f::x1", upper=10)
        y = p.add_var("f::d2")
        p.add(2 * x + 3 * y <= 12)
        p.add(x - y >= -2)
        p.add(x + y == 5)
        p.maximize(4 * x + y)
        return p

    def test_write_contains_sections(self):
        text = write_lp(self.sample())
        assert text.startswith("\\ generated")
        for keyword in ("Maximize", "Subject To", "Bounds", "General",
                        "End"):
            assert keyword in text
        # '::' is not a legal LP name character; scopes are mapped.
        assert "f.x1" in text and "::" not in text.split("\n", 1)[1]

    def test_roundtrip_preserves_optimum(self):
        original = self.sample()
        parsed = read_lp(write_lp(original))
        a = original.solve()
        b = parsed.solve()
        assert a.status is b.status is Status.OPTIMAL
        assert a.objective == pytest.approx(b.objective)
        assert set(parsed.variables) == set(original.variables)

    def test_roundtrip_on_real_ipet_problem(self):
        from repro.cfg import CallGraph, build_cfgs
        from repro.codegen import compile_source
        from repro.constraints import structural_system

        src = """
        int g;
        int leaf(int v) { return v + 1; }
        int f(int n) {
            if (n > 0) g = leaf(n);
            return g;
        }
        """
        program = compile_source(src)
        system = structural_system(CallGraph(build_cfgs(program)), "f")
        problem = Problem("ipet")
        problem.add_all(system)
        objective = LinExpr({name: 1.0 for name in problem.variables
                             if "::x" in name})
        problem.maximize(objective)

        parsed = read_lp(write_lp(problem))
        a, b = problem.solve(), parsed.solve()
        assert a.objective == pytest.approx(b.objective)

    def test_minimize_roundtrip(self):
        p = Problem()
        x = p.add_var("x")
        p.add(x >= 3)
        p.minimize(2 * x)
        parsed = read_lp(write_lp(p))
        assert parsed.solve().objective == pytest.approx(6.0)

    def test_negative_rhs_and_coefs(self):
        p = Problem()
        x, y = p.add_var("x"), p.add_var("y", upper=9)
        p.add(-2 * x + y <= -1)
        p.maximize(y - x)
        parsed = read_lp(write_lp(p))
        assert parsed.solve().objective == pytest.approx(
            p.solve().objective)

    def test_empty_objective(self):
        p = Problem()
        x = p.add_var("x", upper=3)
        p.add(x <= 3)
        p.maximize(LinExpr({}))        # feasibility problem
        parsed = read_lp(write_lp(p))
        assert parsed.solve().status is Status.OPTIMAL

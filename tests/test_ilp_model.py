"""Tests for the expression layer, Problem container and branch & bound."""

import numpy as np
import pytest

from repro.ilp import Constraint, LinExpr, Problem, Status, Var


class TestExpr:
    def test_var_arithmetic(self):
        x, y = Var("x"), Var("y")
        expr = 2 * x + 3 * y - 4
        assert expr.coefficient("x") == 2
        assert expr.coefficient("y") == 3
        assert expr.const == -4

    def test_expr_combination(self):
        x, y = Var("x"), Var("y")
        expr = (x + y) - (x - y)
        assert expr.coefficient("x") == 0
        assert expr.coefficient("y") == 2

    def test_rsub_and_neg(self):
        x = Var("x")
        expr = 5 - x
        assert expr.const == 5
        assert expr.coefficient("x") == -1
        assert (-x).coefficient("x") == -1

    def test_zero_coefficients_dropped(self):
        x = Var("x")
        expr = 0 * x + 1
        assert "x" not in expr.coefs

    def test_constraint_senses(self):
        x = Var("x")
        assert (x <= 3).sense == "<="
        assert (x >= 3).sense == ">="
        assert (x + 0 == 3).sense == "=="
        assert (x <= 3).rhs == 3

    def test_constraint_satisfied_by(self):
        x, y = Var("x"), Var("y")
        c = x + y <= 4
        assert c.satisfied_by({"x": 2, "y": 2})
        assert not c.satisfied_by({"x": 3, "y": 2})
        eq = x + 0 == 2
        assert eq.satisfied_by({"x": 2})
        assert not eq.satisfied_by({"x": 1})

    def test_trivially_false(self):
        c = Constraint(LinExpr({}, 1.0), "==")  # 1 == 0
        assert c.trivially_false()
        c2 = Constraint(LinExpr({"x": 1.0}, 1.0), "==")
        assert not c2.trivially_false()

    def test_evaluate(self):
        x, y = Var("x"), Var("y")
        assert (2 * x + y + 1).evaluate({"x": 3, "y": 4}) == 11

    def test_bad_multiplication(self):
        x, y = Var("x"), Var("y")
        with pytest.raises(TypeError):
            (x + 0) * (y + 0)

    def test_var_bounds_validation(self):
        with pytest.raises(ValueError):
            Var("x", lower=3, upper=1)

    def test_repr_roundtrip_smoke(self):
        x, y = Var("x"), Var("y")
        assert "x" in repr(2 * x - y + 1)
        assert "<=" in repr(x <= 5)


class TestProblem:
    def test_lp_relaxation(self):
        p = Problem()
        x = p.add_var("x", integer=False)
        y = p.add_var("y", integer=False)
        p.add(x + y <= 4)
        p.add(x - y <= 2)
        p.maximize(3 * x + y)
        result = p.solve_relaxation()
        assert result.objective == pytest.approx(10.0)

    def test_integer_rounding_needed(self):
        # max x + y st 2x + 2y <= 5: LP gives 2.5, ILP gives 2.
        p = Problem()
        x, y = p.add_var("x"), p.add_var("y")
        p.add(2 * x + 2 * y <= 5)
        p.maximize(x + y)
        relaxed = p.solve_relaxation()
        assert relaxed.objective == pytest.approx(2.5)
        result = p.solve()
        assert result.status is Status.OPTIMAL
        assert result.objective == pytest.approx(2.0)
        assert not result.stats.first_relaxation_integral

    def test_knapsack(self):
        # Classic 0/1 knapsack: values 10,13,7; weights 3,4,2; cap 6.
        p = Problem()
        items = [p.add_var(f"take{i}", upper=1) for i in range(3)]
        p.add(3 * items[0] + 4 * items[1] + 2 * items[2] <= 6)
        p.maximize(10 * items[0] + 13 * items[1] + 7 * items[2])
        result = p.solve()
        assert result.objective == pytest.approx(20.0)
        assert result.values["take1"] == 1.0
        assert result.values["take2"] == 1.0

    def test_infeasible_ilp(self):
        p = Problem()
        x = p.add_var("x")
        p.add(x + 0 >= 3)
        p.add(x + 0 <= 1)
        p.maximize(x)
        assert p.solve().status is Status.INFEASIBLE

    def test_unbounded_ilp(self):
        p = Problem()
        x = p.add_var("x")
        p.maximize(x)
        assert p.solve().status is Status.UNBOUNDED

    def test_minimize(self):
        p = Problem()
        x, y = p.add_var("x"), p.add_var("y")
        p.add(x + y >= 3)
        p.minimize(2 * x + y)
        result = p.solve()
        assert result.objective == pytest.approx(3.0)
        assert result.values["y"] == 3.0

    def test_lower_bound_shift(self):
        p = Problem()
        x = p.add_var("x", lower=2, upper=5)
        p.minimize(x)
        result = p.solve()
        assert result.objective == pytest.approx(2.0)

    def test_implicit_variables(self):
        p = Problem()
        x = Var("x")
        p.add(x <= 3)
        p.maximize(x)
        assert p.solve().objective == pytest.approx(3.0)

    def test_objective_constant(self):
        p = Problem()
        x = p.add_var("x", upper=4)
        p.maximize(x + 100)
        assert p.solve().objective == pytest.approx(104.0)

    def test_check_assignment(self):
        p = Problem()
        x = p.add_var("x", upper=4)
        p.add(x <= 3)
        assert p.check({"x": 3})
        assert not p.check({"x": 3.5})  # non-integral
        assert not p.check({"x": 5})

    def test_flow_conservation_problem(self):
        # The if-then-else diamond of paper Fig. 2 with unit costs.
        p = Problem()
        x = {i: p.add_var(f"x{i}") for i in range(1, 5)}
        d = {i: p.add_var(f"d{i}") for i in range(1, 7)}
        p.add(d[1] + 0 == 1)
        p.add(x[1] + 0 == d[1])
        p.add(x[1] + 0 == d[2] + d[3])
        p.add(x[2] + 0 == d[2])
        p.add(x[2] + 0 == d[4])
        p.add(x[3] + 0 == d[3])
        p.add(x[3] + 0 == d[5])
        p.add(x[4] + 0 == d[4] + d[5])
        p.add(x[4] + 0 == d[6])
        p.maximize(5 * x[1] + 10 * x[2] + 4 * x[3] + 2 * x[4])
        result = p.solve()
        assert result.status is Status.OPTIMAL
        # Take the then-branch: 5 + 10 + 2.
        assert result.objective == pytest.approx(17.0)
        assert result.stats.first_relaxation_integral
        assert result.stats.lp_calls == 1


class TestAgainstScipyMilp:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_ilp_matches_scipy(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 6))
        m = int(rng.integers(1, 6))
        p = Problem()
        xs = [p.add_var(f"x{j}", upper=int(rng.integers(2, 9)))
              for j in range(n)]
        for _ in range(m):
            coefs = rng.integers(-3, 4, size=n)
            expr = LinExpr({xs[j].name: float(coefs[j]) for j in range(n)})
            sense = rng.choice(["<=", ">="])
            bound = float(rng.integers(-5, 15))
            p.add(expr <= bound if sense == "<=" else expr >= bound)
        obj = LinExpr({xs[j].name: float(rng.integers(-4, 5))
                       for j in range(n)})
        p.maximize(obj)

        ours = p.solve(backend="simplex")
        ref = p.solve(backend="scipy")
        assert ours.status is ref.status
        if ours.status is Status.OPTIMAL:
            assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
            assert p.check(ours.values)

"""Unit tests for the from-scratch two-phase simplex."""

import numpy as np
import pytest

from repro.ilp import simplex
from repro.ilp.solution import Status


def lp(costs, matrix, senses, rhs, maximize=False):
    return simplex.solve_lp(costs, matrix, senses, rhs, maximize=maximize)


class TestBasics:
    def test_simple_maximize(self):
        # max 3x + y st x + y <= 4, x - y <= 2
        result = lp([3, 1], [[1, 1], [1, -1]], ["<=", "<="], [4, 2],
                    maximize=True)
        assert result.status is Status.OPTIMAL
        assert result.objective == pytest.approx(10.0)
        assert result.values["0"] == pytest.approx(3.0)
        assert result.values["1"] == pytest.approx(1.0)

    def test_simple_minimize(self):
        # min x + y st x + 2y >= 4, 3x + y >= 6
        result = lp([1, 1], [[1, 2], [3, 1]], [">=", ">="], [4, 6])
        assert result.status is Status.OPTIMAL
        assert result.objective == pytest.approx(2.8)

    def test_equality_constraints(self):
        # max x st x + y = 5, y >= 2 -> x = 3
        result = lp([1, 0], [[1, 1], [0, 1]], ["==", ">="], [5, 2],
                    maximize=True)
        assert result.objective == pytest.approx(3.0)

    def test_infeasible(self):
        result = lp([1, 0], [[1, 1], [1, 1]], ["<=", ">="], [1, 3])
        assert result.status is Status.INFEASIBLE

    def test_unbounded(self):
        result = lp([1, 0], [[1, -1]], ["<="], [1], maximize=True)
        assert result.status is Status.UNBOUNDED

    def test_negative_rhs_normalization(self):
        # x - y <= -1 with b < 0 must be handled by row normalization.
        result = lp([1, 1], [[1, -1]], ["<="], [-1])
        assert result.status is Status.OPTIMAL
        # min x + y with y >= x + 1 -> x=0, y=1.
        assert result.objective == pytest.approx(1.0)

    def test_no_constraints_bounded(self):
        result = lp([1.0], np.zeros((0, 1)), [], [])
        assert result.status is Status.OPTIMAL
        assert result.objective == 0.0

    def test_no_constraints_unbounded(self):
        result = lp([1.0], np.zeros((0, 1)), [], [], maximize=True)
        assert result.status is Status.UNBOUNDED

    def test_degenerate_flow_problem(self):
        # Flow conservation chain with redundant equalities; exercises
        # phase-1 artificial expulsion of redundant rows.
        # x0 = x1, x1 = x2, x0 = x2 (redundant), x0 <= 7.
        matrix = [[1, -1, 0], [0, 1, -1], [1, 0, -1], [1, 0, 0]]
        result = lp([0, 0, 1], matrix, ["==", "==", "==", "<="], [0, 0, 0, 7],
                    maximize=True)
        assert result.objective == pytest.approx(7.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            lp([1, 2, 3], [[1, 1]], ["<="], [1])


class TestAgainstScipy:
    """Randomized cross-checks against scipy.optimize.linprog (HiGHS)."""

    @pytest.mark.parametrize("seed", range(25))
    def test_random_bounded(self, seed):
        from scipy.optimize import linprog

        rng = np.random.default_rng(seed)
        n = rng.integers(2, 8)
        m = rng.integers(1, 10)
        matrix = rng.integers(-3, 4, size=(m, n)).astype(float)
        rhs = rng.integers(0, 10, size=m).astype(float)
        costs = rng.integers(-5, 6, size=n).astype(float)
        senses = [rng.choice(["<=", ">=", "=="]) for _ in range(m)]
        # Keep x bounded so both solvers agree on status.
        matrix = np.vstack([matrix, np.ones(n)])
        rhs = np.append(rhs, 50.0)
        senses.append("<=")

        ours = lp(costs, matrix, senses, rhs)

        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for row, sense, b in zip(matrix, senses, rhs):
            if sense == "<=":
                a_ub.append(row)
                b_ub.append(b)
            elif sense == ">=":
                a_ub.append(-row)
                b_ub.append(-b)
            else:
                a_eq.append(row)
                b_eq.append(b)
        ref = linprog(costs, A_ub=a_ub or None, b_ub=b_ub or None,
                      A_eq=a_eq or None, b_eq=b_eq or None,
                      bounds=(0, None), method="highs")
        if ref.status == 2:
            assert ours.status is Status.INFEASIBLE
        else:
            assert ref.status == 0
            assert ours.status is Status.OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)

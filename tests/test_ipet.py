"""Integration tests for the IPET estimator.

Covers the paper's running example (check_data, Figs. 5-6), soundness
against simulation and calculation, agreement with the explicit
path-enumeration baseline, context sensitivity and the §VI-A solver
observation.
"""

import pytest

from repro import (Analysis, Dataset, MissingLoopBoundError, calculated_bound,
                   compile_source, enumerate_paths, measure_bounds, pessimism)
from repro.errors import AnalysisError, InfeasibleError

CHECK_DATA = """
const int DATASIZE = 10;
int data[10];

int check_data() {
    int i, morecheck, wrongone;
    morecheck = 1; i = 0; wrongone = -1;
    while (morecheck) {
        if (data[i] < 0) {
            wrongone = i; morecheck = 0;
        }
        else
            if (++i >= DATASIZE)
                morecheck = 0;
    }
    if (wrongone >= 0)
        return 0;
    else
        return 1;
}
"""

#: Best case: first element negative, loop runs once.
CHECK_DATA_BEST = Dataset(globals={"data": [-1] + [0] * 9})
#: Worst case: nothing negative, loop runs DATASIZE times.
CHECK_DATA_WORST = Dataset(globals={"data": [1] * 10})

SUM_LOOP = """
int data[8];
int f() {
    int i; int s; s = 0;
    for (i = 0; i < 8; i++) s += data[i];
    return s;
}
"""


def check_data_analysis(**kwargs):
    analysis = Analysis(CHECK_DATA, entry="check_data", **kwargs)
    analysis.bound_loop(lo=1, hi=10)
    return analysis


class TestBasicEstimation:
    def test_fixed_loop_bounds(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        analysis.bound_loop(lo=8, hi=8)
        report = analysis.estimate()
        assert 0 < report.best <= report.worst
        # Exactly one constraint set, no functionality constraints.
        assert report.sets_solved == 1

    def test_missing_loop_bound_raises(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        with pytest.raises(MissingLoopBoundError):
            analysis.estimate()

    def test_loops_needing_bounds(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        assert len(analysis.loops_needing_bounds()) == 1
        analysis.bound_loop(lo=8, hi=8)
        assert analysis.loops_needing_bounds() == []

    def test_straight_line_needs_no_bounds(self):
        analysis = Analysis("int f(int a) { return a * 2 + 1; }", entry="f")
        report = analysis.estimate()
        assert report.best > 0
        assert report.best <= report.worst

    def test_branchy_function_worst_takes_expensive_path(self):
        src = """
        float f(int p, float x) {
            if (p)
                return x + 1.0;        /* cheap */
            return sin(x) * cos(x);    /* expensive */
        }
        """
        analysis = Analysis(src, entry="f")
        report = analysis.estimate()
        # Worst path must include the transcendental block.
        assert report.worst - report.best > 300

    def test_wider_loop_bound_widens_interval(self):
        tight = Analysis(SUM_LOOP, entry="f")
        tight.bound_loop(lo=8, hi=8)
        loose = Analysis(SUM_LOOP, entry="f")
        loose.bound_loop(lo=0, hi=100)
        t, l = tight.estimate(), loose.estimate()
        assert l.best <= t.best
        assert l.worst >= t.worst

    def test_unknown_entry(self):
        with pytest.raises(AnalysisError):
            Analysis(SUM_LOOP, entry="nope")

    def test_bound_loop_bad_function(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        with pytest.raises(AnalysisError):
            analysis.bound_loop(lo=1, hi=2, function="g")

    def test_ambiguous_loop_requires_line(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s++;
            for (int j = 0; j < n; j++) s--;
            return s;
        }
        """
        analysis = Analysis(src, entry="f")
        with pytest.raises(AnalysisError, match="lines"):
            analysis.bound_loop(lo=0, hi=5)
        lines = sorted(l.header_line for l in analysis.loops)
        analysis.bound_loop(lo=0, hi=5, line=lines[0])
        analysis.bound_loop(lo=0, hi=5, line=lines[1])
        analysis.estimate()

    def test_bound_loops_bulk(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        line = analysis.loops[0].header_line
        analysis.bound_loops({("f", line): (8, 8)})
        analysis.estimate()


class TestCheckDataPaperExample:
    def test_minimum_info_estimate(self):
        report = check_data_analysis().estimate()
        assert report.sets_solved == 1
        assert report.best < report.worst

    def test_paper_functionality_constraints_give_two_sets(self):
        analysis = check_data_analysis()
        listing = analysis_annotation(analysis)
        # Identify blocks from the annotated listing (paper Fig. 5
        # labels): the wrongone/morecheck block and the return-0 block.
        x_neg = listing["wrongone = i; morecheck = 0;"]
        x_inc = listing["morecheck = 0;"]
        x_ret0 = listing["return 0;"]
        analysis.add_constraint(
            f"({x_neg} = 0 & {x_inc} = 1) | ({x_neg} = 1 & {x_inc} = 0)")
        analysis.add_constraint(f"{x_neg} = {x_ret0}")
        assert analysis.expansion().count == 2   # paper §III-D
        report = analysis.estimate()
        assert report.sets_solved == 2

    def test_constraints_tighten_bound(self):
        plain = check_data_analysis().estimate()
        analysis = check_data_analysis()
        listing = analysis_annotation(analysis)
        x_neg = listing["wrongone = i; morecheck = 0;"]
        x_inc = listing["morecheck = 0;"]
        analysis.add_constraint(
            f"({x_neg} = 0 & {x_inc} = 1) | ({x_neg} = 1 & {x_inc} = 0)")
        tightened = analysis.estimate()
        assert tightened.worst <= plain.worst
        assert tightened.best >= plain.best

    def test_soundness_against_calculation(self):
        # Fig. 1: the estimate must enclose the calculated bound.
        report = check_data_analysis().estimate()
        program = compile_source(CHECK_DATA)
        calc = calculated_bound(program, "check_data",
                                CHECK_DATA_BEST, CHECK_DATA_WORST)
        assert report.encloses(calc.interval)
        assert calc.worst_result.value == 1   # no negatives -> returns 1
        assert calc.best_result.value == 0

    def test_soundness_against_measurement(self):
        report = check_data_analysis().estimate()
        program = compile_source(CHECK_DATA)
        measured = measure_bounds(program, "check_data",
                                  CHECK_DATA_BEST, CHECK_DATA_WORST)
        assert report.encloses(measured.interval)

    def test_pessimism_formula(self):
        # Paper Table III row check_data: E=[32,1039], M=[38,441]
        # gives pessimism [0.16, 1.36].
        lo, hi = pessimism((32, 1039), (38, 441))
        assert lo == pytest.approx(0.158, abs=0.01)
        assert hi == pytest.approx(1.356, abs=0.01)


def analysis_annotation(analysis):
    """Map a source snippet to the x-variable of the block starting
    at its line, using the annotated listing machinery."""
    from repro.analysis import annotate_function

    cfg = analysis.cfgs[analysis.entry]
    source_lines = analysis.program.source.splitlines()
    mapping = {}
    for block in cfg.blocks.values():
        line = block.instrs[0].line
        if not line:
            continue
        text = source_lines[line - 1].strip()
        mapping.setdefault(text, block.var)
    # Sanity: the listing renders.
    assert annotate_function(cfg, analysis.program.source)
    return mapping


class TestAgainstEnumeration:
    """DESIGN.md invariant 3: IPET = explicit enumeration when both
    apply."""

    CASES = {
        "single_loop": ("""
            int f(int n) {
                int s = 0;
                for (int i = 0; i < 6; i++) s += i;
                return s;
            }""", {(None, None): (6, 6)}),
        "branch_in_loop": ("""
            int f(int n) {
                int s = 0;
                for (int i = 0; i < 5; i++) {
                    if (n > i) s += n * n;
                    else s -= 1;
                }
                return s;
            }""", {(None, None): (5, 5)}),
        "loop_then_branch": ("""
            int f(int n) {
                int s = 0;
                int i = 0;
                while (i < 4) { s += i; i++; }
                if (s > 3) return s * 2;
                return s;
            }""", {(None, None): (4, 4)}),
        "call_chain": ("""
            int leaf(int x) { return x * x; }
            int f(int n) {
                int s = 0;
                for (int i = 0; i < 3; i++) s += leaf(i);
                return s;
            }""", {(None, None): (3, 3)}),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_equal_bounds(self, name):
        source, raw_bounds = self.CASES[name]
        analysis = Analysis(source, entry="f")
        loops = analysis.loops
        bounds = {}
        for loop, (lo, hi) in zip(loops, raw_bounds.values()):
            bounds[loop.key] = (lo, hi)
            analysis.bound_loop(lo, hi, function=loop.function,
                                line=loop.header_line)
        report = analysis.estimate()
        enum = enumerate_paths(analysis.program, "f", bounds)
        assert report.worst == enum.worst, name
        assert report.best == enum.best, name

    def test_variable_bounds_ipet_superset(self):
        # With loose bounds IPET may only be >= the enumerator's worst
        # (aggregate vs per-entry semantics), never below.
        source = """
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        s += i * j;
                return s;
            }
        """
        analysis = Analysis(source, entry="f")
        bounds = {}
        for loop in analysis.loops:
            lo, hi = (0, 4)
            bounds[loop.key] = (lo, hi)
            analysis.bound_loop(lo, hi, function=loop.function,
                                line=loop.header_line)
        report = analysis.estimate()
        enum = enumerate_paths(analysis.program, "f", bounds)
        assert report.worst >= enum.worst
        assert report.best <= enum.best


CALLER_CALLEE = """
int data[10];
int flag;

int check(int i) {
    if (data[i] < 0)
        return 0;
    return 1;
}

void clear() {
    int i;
    for (i = 0; i < 10; i++) data[i] = 0;
}

void task() {
    int status;
    status = check(0);
    if (!status)
        clear();
    flag = status;
}
"""


class TestContextSensitivity:
    def test_scoped_constraint_requires_context_mode(self):
        analysis = Analysis(CALLER_CALLEE, entry="task")
        analysis.bound_loop(lo=10, hi=10, function="clear")
        analysis.add_constraint("x1.f1 <= 1")
        with pytest.raises(AnalysisError, match="context_sensitive"):
            analysis.estimate()

    def test_paper_eq18_links_caller_and_callee(self):
        # x(clear called) = x(check returned 0 at site f1).
        analysis = Analysis(CALLER_CALLEE, entry="task",
                            context_sensitive=True)
        analysis.bound_loop(lo=10, hi=10, function="clear")
        base = analysis.estimate()

        # Find check()'s return-0 block: the one executing `return 0;`.
        check_cfg = analysis.cfgs["check"]
        source_lines = CALLER_CALLEE.splitlines()
        ret0 = next(b for b in check_cfg.blocks.values()
                    if any(source_lines[l - 1].strip() == "return 0;"
                           for l in b.lines))
        # task's f-edges: f1 = call to check, f2 = call to clear.
        task_cfg = analysis.cfgs["task"]
        call_edges = task_cfg.call_edges()
        check_edge = next(e for e in call_edges if e.callee == "check")
        clear_edge = next(e for e in call_edges if e.callee == "clear")
        clear_block = task_cfg.blocks[clear_edge.src]

        tightened = Analysis(CALLER_CALLEE, entry="task",
                             context_sensitive=True)
        tightened.bound_loop(lo=10, hi=10, function="clear")
        tightened.add_constraint(
            f"{clear_block.var} = {ret0.var}.{check_edge.name}")
        report = tightened.estimate()
        # With data[0] unconstrained both paths stay feasible, so the
        # constraint must not widen anything.
        assert report.worst <= base.worst
        assert report.best >= base.best

    def test_context_mode_matches_merged_without_constraints(self):
        merged = Analysis(CALLER_CALLEE, entry="task")
        merged.bound_loop(lo=10, hi=10, function="clear")
        ctx = Analysis(CALLER_CALLEE, entry="task", context_sensitive=True)
        ctx.bound_loop(lo=10, hi=10, function="clear")
        assert merged.estimate().interval == ctx.estimate().interval

    def test_context_tightens_multi_site_calls(self):
        # leaf() is called from a cheap site (1 iter) and an expensive
        # site (8 iters); merged mode must assume max at both.
        source = """
        int work(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += i;
            return s;
        }
        int f() {
            int a; int b;
            a = work(1);
            b = work(8);
            return a + b;
        }
        """
        merged = Analysis(source, entry="f")
        merged.bound_loop(lo=0, hi=8, function="work")
        merged_report = merged.estimate()

        ctx = Analysis(source, entry="f", context_sensitive=True)
        ctx.bound_loop(lo=0, hi=8, function="work")
        # Constrain the first call site's loop to one iteration via a
        # scoped constraint on the callee's back-edge count.
        work_cfg = ctx.cfgs["work"]
        loop = ctx.loops[0]
        back = loop.back_edges[0]
        f_cfg = ctx.cfgs["f"]
        first_site = f_cfg.call_edges()[0]
        ctx.add_constraint(f"{back.name}.{first_site.name} <= 1",
                           function="f")
        ctx_report = ctx.estimate()
        assert ctx_report.worst < merged_report.worst


class TestSolverBehaviourClaim:
    def test_first_relaxation_integral_on_ipet_problems(self):
        # §VI-A: the branch-and-bound ILP solver finds the very first
        # LP relaxation integer valued on these flow problems.
        analysis = check_data_analysis()
        report = analysis.estimate()
        assert report.all_first_relaxations_integral
        assert report.lp_calls == 2 * report.sets_solved

    def test_scipy_backend_agrees(self):
        ours = check_data_analysis().estimate()
        scipy_report = check_data_analysis(backend="scipy").estimate()
        assert ours.interval == scipy_report.interval


class TestCacheSplitAblation:
    def test_cache_split_tightens_worst(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        analysis.bound_loop(lo=8, hi=8)
        plain = analysis.estimate()

        split = Analysis(SUM_LOOP, entry="f", cache_split=True)
        split.bound_loop(lo=8, hi=8)
        refined = split.estimate()
        assert refined.worst < plain.worst
        assert refined.best == plain.best

    def test_cache_split_still_sound(self):
        split = Analysis(SUM_LOOP, entry="f", cache_split=True)
        split.bound_loop(lo=8, hi=8)
        report = split.estimate()
        program = compile_source(SUM_LOOP)
        data = Dataset(globals={"data": [3] * 8})
        measured = measure_bounds(program, "f", data, data)
        assert report.encloses(measured.interval)

    def test_cache_split_with_context_rejected(self):
        with pytest.raises(AnalysisError):
            Analysis(SUM_LOOP, entry="f", cache_split=True,
                     context_sensitive=True)


class TestFunctionalityEdgeCases:
    def test_contradictory_constraints_all_sets_infeasible(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        analysis.bound_loop(lo=8, hi=8)
        analysis.add_constraint("x1 = 0")   # entry block must run once
        with pytest.raises(InfeasibleError):
            analysis.estimate()

    def test_trivially_null_sets_pruned_before_solving(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        analysis.bound_loop(lo=8, hi=8)
        analysis.add_constraint("x1 = 1 | x1 = 2")
        analysis.add_constraint("x1 = 1 | x1 = 3")
        expansion = analysis.expansion()
        assert expansion.total_before_pruning == 4
        assert expansion.count == 1
        report = analysis.estimate()
        assert report.sets_pruned == 3

    def test_unknown_variable_rejected(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        analysis.bound_loop(lo=8, hi=8)
        analysis.add_constraint("x99 = 1")
        with pytest.raises(AnalysisError, match="x99"):
            analysis.estimate()

    def test_constraint_on_unknown_function(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        with pytest.raises(AnalysisError):
            analysis.add_constraint("x1 = 1", function="ghost")

    def test_edge_variable_constraints(self):
        analysis = Analysis(SUM_LOOP, entry="f")
        analysis.bound_loop(lo=0, hi=20)
        analysis.add_constraint("d1 = 1")    # redundant but legal
        report = analysis.estimate()
        assert report.best <= report.worst

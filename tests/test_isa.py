"""Consistency tests for the IR960 ISA definition and layout."""

import pytest

from repro.codegen import compile_source, disassemble
from repro.codegen.isa import (BRANCH_TESTS, BRANCHES, CONDITIONAL_BRANCHES,
                               INSTRUCTION_BYTES, INTRINSIC_OPS,
                               INVERSE_BRANCH, ISSUE_CYCLES, Instruction,
                               MemRef, Op)


class TestISATables:
    def test_every_opcode_has_issue_cycles(self):
        missing = [op for op in Op if op not in ISSUE_CYCLES]
        assert missing == []

    def test_issue_cycles_positive(self):
        assert all(c >= 1 for c in ISSUE_CYCLES.values())

    def test_branch_sets_consistent(self):
        assert CONDITIONAL_BRANCHES == set(BRANCH_TESTS)
        assert BRANCHES == CONDITIONAL_BRANCHES | {Op.B}

    def test_inverse_branch_is_involution(self):
        for op, inverse in INVERSE_BRANCH.items():
            assert INVERSE_BRANCH[inverse] is op

    def test_inverse_branch_semantics(self):
        cases = [(1, 2), (2, 1), (3, 3), (-1, 0)]
        for op, inverse in INVERSE_BRANCH.items():
            for a, b in cases:
                assert BRANCH_TESTS[op](a, b) != BRANCH_TESTS[inverse](a, b)

    def test_intrinsics_map_to_ops(self):
        from repro.lang.semantic import BUILTINS

        assert set(INTRINSIC_OPS) == set(BUILTINS)
        assert all(op in ISSUE_CYCLES for op in INTRINSIC_OPS.values())

    def test_transcendentals_cost_more_than_alu(self):
        for op in (Op.SIN, Op.COS, Op.ATAN, Op.EXP, Op.LOG, Op.SQRT):
            assert ISSUE_CYCLES[op] > 10 * ISSUE_CYCLES[Op.ADD]


class TestInstruction:
    def test_reads_covers_operands(self):
        instr = Instruction(Op.ADD, dest=3, src1=1, src2=2)
        assert set(instr.reads()) == {1, 2}

    def test_reads_includes_memref_index(self):
        instr = Instruction(Op.LD, dest=1, mem=MemRef("abs", 0, index=7))
        assert 7 in instr.reads()

    def test_reads_includes_call_args(self):
        instr = Instruction(Op.CALL, dest=1, callee="g", args=(4, 5))
        assert set(instr.reads()) == {4, 5}

    def test_predicates(self):
        assert Instruction(Op.BEQ, src1=0, src2=1, target=0).is_conditional
        assert Instruction(Op.B, target=0).is_branch
        assert not Instruction(Op.B, target=0).is_conditional
        assert Instruction(Op.RET).ends_block
        assert not Instruction(Op.ADD, dest=0, src1=0, src2=0).ends_block

    def test_str_forms(self):
        assert "call g(r1, r2)" in str(
            Instruction(Op.CALL, dest=0, callee="g", args=(1, 2)))
        assert "[fp+3+r2]" in str(
            Instruction(Op.LD, dest=0, mem=MemRef("frame", 3, index=2)))

    def test_memref_str_absolute(self):
        assert str(MemRef("abs", 12)) == "[12]"


class TestLayout:
    def test_instruction_bytes_fixed(self):
        assert INSTRUCTION_BYTES == 4

    def test_disassembly_lists_every_instruction(self):
        program = compile_source("""
            int g(int a) { return a * 2; }
            int f(int a) { return g(a) + 1; }
        """)
        text = disassemble(program)
        # One line per instruction plus one label line per function.
        assert len(text.splitlines()) == len(program.code) + 2

    def test_function_at_lookup(self):
        program = compile_source("""
            int g(int a) { return a; }
            int f(int a) { return g(a); }
        """)
        g = program.functions["g"]
        f = program.functions["f"]
        assert program.function_at(g.entry_index).name == "g"
        assert program.function_at(f.entry_index).name == "f"
        assert program.function_at(len(program.code) - 1).name == "f"

"""Unit tests for the MiniC lexer."""

import pytest

from repro.errors import LexError
from repro.lang import tokenize


def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src)[:-1]]


class TestTokens:
    def test_keywords_and_ids(self):
        assert kinds("int foo") == [("kw", "int"), ("id", "foo")]

    def test_integer_literal(self):
        assert kinds("42") == [("int", 42)]

    def test_float_literals(self):
        assert kinds("3.5 1e3 2.5e-2 .5") == [
            ("float", 3.5), ("float", 1000.0), ("float", 0.025),
            ("float", 0.5)]

    def test_operators_longest_match(self):
        assert kinds("a<<=b") == [("id", "a"), ("op", "<<="), ("id", "b")]
        assert kinds("i++ + ++j") == [
            ("id", "i"), ("op", "++"), ("op", "+"), ("op", "++"), ("id", "j")]
        assert kinds("a<=b") == [("id", "a"), ("op", "<="), ("id", "b")]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]

    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("id", "a"), ("id", "b")]

    def test_block_comment_multiline(self):
        tokens = tokenize("a /* x\ny */ b")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("id", "a"), ("id", "b")]
        assert tokens[1].line == 2

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_number_glued_to_identifier(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_malformed_exponent(self):
        with pytest.raises(LexError):
            tokenize("1e+")

    def test_underscore_identifier(self):
        assert kinds("_tmp_1") == [("id", "_tmp_1")]

    def test_hex_literals(self):
        assert kinds("0xff 0X10 0xDEAD") == [
            ("int", 255), ("int", 16), ("int", 0xDEAD)]

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")
        with pytest.raises(LexError):
            tokenize("0xfg")

    def test_hex_in_expression(self):
        assert kinds("a & 0x0f") == [
            ("id", "a"), ("op", "&"), ("int", 15)]

"""Unit tests for the MiniC parser and semantic analysis."""

import pytest

from repro.errors import ParseError, RecursionForbiddenError, SemanticError
from repro.lang import ast, frontend, parse_program


class TestParser:
    def test_minimal_function(self):
        prog = parse_program("int main() { return 0; }")
        assert len(prog.functions) == 1
        fn = prog.functions[0]
        assert fn.name == "main"
        assert fn.ret_type.base == "int"
        assert isinstance(fn.body.stmts[0], ast.Return)

    def test_globals_with_initializers(self):
        prog = parse_program("""
            const int N = 10;
            int data[10];
            int table[2][2] = {1, 2, 3, 4};
            float scale = 2.5;
        """)
        names = [g.name for g in prog.globals]
        assert names == ["N", "data", "table", "scale"]
        assert prog.globals[2].type.dims == (2, 2)
        assert prog.globals[2].init == [1, 2, 3, 4]

    def test_const_used_as_dimension(self):
        prog = parse_program("const int N = 4; int a[N]; int b[N*2];")
        assert prog.globals[1].type.dims == (4,)
        assert prog.globals[2].type.dims == (8,)

    def test_nested_brace_initializer_flattens(self):
        prog = parse_program("int t[2][2] = {{1, 2}, {3, 4}};")
        assert prog.globals[0].init == [1, 2, 3, 4]

    def test_negative_initializer(self):
        prog = parse_program("int t[2] = {-1, -2};")
        assert prog.globals[0].init == [-1, -2]

    def test_if_else_chain(self):
        prog = parse_program("""
            void f(int p) {
                if (p) p = 1; else if (p > 2) p = 2; else p = 3;
            }
        """)
        outer = prog.functions[0].body.stmts[0]
        assert isinstance(outer, ast.If)
        assert isinstance(outer.orelse, ast.If)

    def test_for_loop_with_decl(self):
        prog = parse_program("void f() { for (int i = 0; i < 4; i++) { } }")
        loop = prog.functions[0].body.stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.Decl)
        assert isinstance(loop.update, ast.IncDec)

    def test_for_loop_empty_clauses(self):
        prog = parse_program("void f() { for (;;) break; }")
        loop = prog.functions[0].body.stmts[0]
        assert loop.init is None and loop.cond is None and loop.update is None

    def test_do_while(self):
        prog = parse_program("void f() { int i = 0; do i++; while (i < 3); }")
        assert isinstance(prog.functions[0].body.stmts[1], ast.DoWhile)

    def test_precedence(self):
        prog = parse_program("int f() { return 1 + 2 * 3; }")
        expr = prog.functions[0].body.stmts[0].value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_logical_vs_bitwise_precedence(self):
        prog = parse_program("int f(int a, int b) { return a & 1 && b; }")
        expr = prog.functions[0].body.stmts[0].value
        assert expr.op == "&&"
        assert expr.left.op == "&"

    def test_chained_assignment(self):
        prog = parse_program("void f() { int a; int b; a = b = 3; }")
        stmt = prog.functions[0].body.stmts[2]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_compound_assignment(self):
        prog = parse_program("void f() { int a = 0; a += 2; a <<= 1; }")
        assert prog.functions[0].body.stmts[1].expr.op == "+="
        assert prog.functions[0].body.stmts[2].expr.op == "<<="

    def test_prefix_increment_in_condition(self):
        # Paper Fig. 5, line 9: if (++i >= DATASIZE) ...
        prog = parse_program("""
            const int DATASIZE = 10;
            void f() { int i = 0; if (++i >= DATASIZE) i = 0; }
        """)
        cond = prog.functions[0].body.stmts[1].cond
        assert cond.op == ">="
        assert isinstance(cond.left, ast.IncDec) and cond.left.prefix

    def test_ternary(self):
        prog = parse_program("int f(int a) { return a > 0 ? 1 : -1; }")
        assert isinstance(prog.functions[0].body.stmts[0].value, ast.Ternary)

    def test_2d_index(self):
        prog = parse_program("int m[3][3]; int f() { return m[1][2]; }")
        expr = prog.functions[0].body.stmts[0].value
        assert isinstance(expr, ast.Index)
        assert len(expr.indices) == 2

    def test_multi_declarator(self):
        prog = parse_program("void f() { int a = 1, b = 2; }")
        group = prog.functions[0].body.stmts[0]
        assert isinstance(group, ast.DeclGroup)
        assert [d.name for d in group.decls] == ["a", "b"]

    def test_multi_declarator_shares_scope(self):
        frontend("void f() { int a = 1, b = 2; a = b; }")

    def test_void_params(self):
        prog = parse_program("int f(void) { return 1; }")
        assert prog.functions[0].params == []

    def test_assignment_to_rvalue_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f() { 3 = 4; }")

    def test_array_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f(int a[10]) { }")

    def test_const_without_initializer_rejected(self):
        with pytest.raises(ParseError):
            parse_program("const int N;")

    def test_nonconstant_dimension_rejected(self):
        with pytest.raises(ParseError):
            parse_program("int n = 3; int a[n];")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("void f() { int a = 1 }")


class TestSemantic:
    def test_type_annotation(self):
        prog = frontend("float f(int a, float b) { return a + b; }")
        ret = prog.functions[0].body.stmts[0].value
        assert ret.type == "float"
        assert ret.left.type == "int"

    def test_comparison_is_int(self):
        prog = frontend("int f(float a) { return a < 2.0; }")
        assert prog.functions[0].body.stmts[0].value.type == "int"

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError):
            frontend("void f() { x = 1; }")

    def test_use_before_declare(self):
        with pytest.raises(SemanticError):
            frontend("void f() { x = 1; int x; }")

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemanticError):
            frontend("void f() { int x; int x; }")

    def test_shadowing_in_nested_scope_allowed(self):
        frontend("void f() { int x = 1; { int x = 2; x = 3; } }")

    def test_recursion_rejected(self):
        with pytest.raises(RecursionForbiddenError):
            frontend("int f(int n) { return f(n - 1); }")

    def test_mutual_recursion_rejected(self):
        with pytest.raises(RecursionForbiddenError):
            frontend("""
                int f(int n) { return g(n); }
                int g(int n) { return f(n); }
            """)

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            frontend("void f() { break; }")

    def test_continue_inside_loop_ok(self):
        frontend("void f() { while (1) { continue; } }")

    def test_missing_return(self):
        with pytest.raises(SemanticError):
            frontend("int f(int a) { if (a) return 1; }")

    def test_return_on_both_branches_ok(self):
        frontend("int f(int a) { if (a) return 1; else return 2; }")

    def test_infinite_loop_with_returns_ok(self):
        # while(1) without break never falls through (clipper idiom).
        frontend("""
            int f(int a) {
                while (1) {
                    if (a > 0) return a;
                    a = a + 1;
                }
            }
        """)

    def test_infinite_loop_with_break_still_needs_return(self):
        with pytest.raises(SemanticError):
            frontend("""
                int f(int a) {
                    while (1) {
                        if (a > 0) return a;
                        break;
                    }
                }
            """)

    def test_break_in_nested_loop_does_not_escape(self):
        frontend("""
            int f(int a) {
                while (1) {
                    for (int i = 0; i < 3; i++)
                        if (i == a) break;
                    if (a > 0) return a;
                }
            }
        """)

    def test_void_returning_value(self):
        with pytest.raises(SemanticError):
            frontend("void f() { return 3; }")

    def test_const_assignment_rejected(self):
        with pytest.raises(SemanticError):
            frontend("const int N = 3; void f() { N = 4; }")

    def test_modulo_on_float_rejected(self):
        with pytest.raises(SemanticError):
            frontend("float f(float a) { return a % 2.0; }")

    def test_array_without_index_rejected(self):
        with pytest.raises(SemanticError):
            frontend("int a[4]; int f() { return a; }")

    def test_index_arity_mismatch(self):
        with pytest.raises(SemanticError):
            frontend("int m[2][2]; int f() { return m[1]; }")

    def test_float_index_rejected(self):
        with pytest.raises(SemanticError):
            frontend("int a[4]; int f(float x) { return a[x]; }")

    def test_call_arity_checked(self):
        with pytest.raises(SemanticError):
            frontend("int g(int a) { return a; } int f() { return g(); }")

    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            frontend("void f() { mystery(); }")

    def test_builtin_intrinsics(self):
        prog = frontend("float f(float x) { return sin(x) + sqrt(x); }")
        assert prog.functions[0].body.stmts[0].value.type == "float"

    def test_builtin_arity(self):
        with pytest.raises(SemanticError):
            frontend("float f(float x) { return sin(x, x); }")

    def test_incdec_on_float_rejected(self):
        with pytest.raises(SemanticError):
            frontend("void f(float x) { x++; }")

    def test_paper_check_data_parses(self):
        # The running example of the paper (Fig. 5), verbatim in MiniC.
        source = """
            const int DATASIZE = 10;
            int data[10];

            int check_data() {
                int i, morecheck, wrongone;
                morecheck = 1; i = 0; wrongone = -1;
                while (morecheck) {
                    if (data[i] < 0) {
                        wrongone = i; morecheck = 0;
                    }
                    else
                        if (++i >= DATASIZE)
                            morecheck = 0;
                }
                if (wrongone >= 0)
                    return 0;
                else
                    return 1;
            }
        """
        prog = frontend(source)
        assert prog.function("check_data").ret_type.base == "int"

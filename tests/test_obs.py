"""Tests for the observability layer (:mod:`repro.obs`): span tracer,
metrics registry, Chrome trace exporter, golden trace/explanation
files, the bound explainer's witness properties, per-direction
relaxation flags, and budget-aware cache keys."""

import json
import threading
from pathlib import Path

import pytest

from repro.engine.cache import ResultCache
from repro.engine.metrics import EngineMetrics
from repro.errors import AnalysisError
from repro.obs import (NULL_TRACER, Counter, Gauge, Histogram,
                       MetricsRegistry, Tracer, diff_explanations,
                       explain_bound, explanation_delta_to_dict,
                       explanation_to_dict, render_explanation,
                       render_explanation_delta, to_chrome,
                       trace_skeleton, write_chrome_trace)
from repro.programs import get_benchmark

GOLDEN = Path(__file__).parent / "golden"


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_fields(self):
        tracer = Tracer()
        with tracer.span("work", cat="solver", set=3) as span:
            span.inc("pivots", 17)
            span.set("status", "optimal")
        (record,) = tracer.records()
        assert record["name"] == "work"
        assert record["cat"] == "solver"
        assert record["depth"] == 0
        assert record["dur"] >= 0
        assert record["args"] == {"set": 3, "pivots": 17,
                                  "status": "optimal"}

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # Inner finishes (and is recorded) first.
        assert [r["name"] for r in tracer.records()] == ["inner", "outer"]

    def test_exception_tags_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (record,) = tracer.records()
        assert record["args"]["error"] == "ValueError"

    def test_empty_tracer_is_truthy(self):
        # `tracer or NULL_TRACER` must never demote a live tracer.
        tracer = Tracer()
        assert len(tracer) == 0
        assert bool(tracer)
        assert (tracer or NULL_TRACER) is tracer

    def test_absorb_merges_foreign_records(self):
        parent, child = Tracer(), Tracer()
        with child.span("remote"):
            pass
        parent.absorb(child.records())
        assert [r["name"] for r in parent.records()] == ["remote"]

    def test_records_are_picklable_plain_dicts(self):
        import pickle

        tracer = Tracer()
        with tracer.span("work", cat="solver"):
            pass
        assert pickle.loads(pickle.dumps(tracer.records())) \
            == tracer.records()

    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()

        def work(name):
            with tracer.span(name):
                pass

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(4)]
        with tracer.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        records = tracer.records()
        assert len(records) == 5
        # Spans on other threads are roots there, not children of main.
        assert all(r["depth"] == 0 for r in records)

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("ignored", cat="x", a=1) as span:
            span.inc("n")
            span.set("k", "v")
        NULL_TRACER.absorb([{"name": "x"}])
        assert NULL_TRACER.records() == []
        assert len(NULL_TRACER) == 0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(-2.0)
        assert gauge.value == 3.0

    def test_histogram_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 0.1):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(55.6 / 4)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_snapshot_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("lp_calls").inc(7)
        registry.gauge("wall").set(1.25)
        registry.histogram("secs", buckets=(0.1, 1.0)).observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # JSON-safe
        # Schema 2: every snapshot is stamped with capture times.
        assert snapshot["_ts"]["type"] == "meta"
        assert snapshot["_ts"]["wall"] > 0
        assert snapshot["_ts"]["monotonic"] > 0
        clone = MetricsRegistry.from_snapshot(snapshot)
        reread = clone.snapshot()
        # The stamp is capture metadata, not a metric: it is not
        # restored, and the re-read snapshot gets its own fresh one.
        assert "_ts" not in clone
        assert {k: v for k, v in reread.items() if k != "_ts"} \
            == {k: v for k, v in snapshot.items() if k != "_ts"}
        assert clone.value("lp_calls") == 7
        assert clone.value("secs") == 1  # histograms report count

    def test_diff_and_render(self):
        before = MetricsRegistry()
        before.counter("lp_calls").inc(2)
        after = MetricsRegistry.from_snapshot(before.snapshot())
        after.counter("lp_calls").inc(5)
        after.histogram("secs").observe(0.2)
        delta = MetricsRegistry.diff(before.snapshot(), after.snapshot())
        assert delta["lp_calls"]["value"] == 5
        assert delta["secs"]["count"] == 1
        rendered = MetricsRegistry.render_diff(delta)
        assert "lp_calls" in rendered and "+5" in rendered
        assert "(no differences)" in MetricsRegistry.render_diff(
            MetricsRegistry.diff(after.snapshot(), after.snapshot()))

    def test_merge_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        b.histogram("h", buckets=(1.0,)).observe(0.5)
        a.merge(b)
        assert a.value("n") == 3
        assert a.histogram("h", buckets=(1.0,)).counts == [1, 0]

    def test_dump_load(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc(4)
        path = tmp_path / "metrics.json"
        registry.dump(path)
        assert MetricsRegistry.load(path).value("n") == 4


class TestHistogramPercentiles:
    def test_interpolates_within_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            histogram.observe(value)
        # Rank 2 of 4 sits at the end of the (1.0, 2.0] bucket's first
        # observation: 1.0 + (2/4*4 - 1)/2 * (2.0 - 1.0) = 1.5.
        assert histogram.percentile(0.5) == pytest.approx(1.5)
        assert histogram.percentile(1.0) == pytest.approx(4.0)
        # Quantiles are monotone in q.
        quantiles = [histogram.percentile(q)
                     for q in (0.1, 0.3, 0.5, 0.8, 1.0)]
        assert quantiles == sorted(quantiles)

    def test_overflow_bucket_clamps_to_last_edge(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        histogram.observe(100.0)
        assert histogram.percentile(0.99) == 2.0

    def test_empty_and_bad_quantile(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert histogram.percentile(0.5) == 0.0
        histogram.observe(0.5)
        for q in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                histogram.percentile(q)

    def test_engine_report_prints_percentiles(self):
        metrics = EngineMetrics()
        from repro.engine.metrics import SET_SECONDS_BUCKETS

        histogram = metrics.registry.histogram(
            "engine.set_wall_seconds", buckets=SET_SECONDS_BUCKETS)
        for value in (0.01, 0.02, 0.4):
            histogram.observe(value)
        text = metrics.render()
        assert "set solve seconds: p50" in text
        assert "p95" in text and "p99" in text and "over 3 sets" in text

    def test_engine_report_omits_percentiles_when_empty(self):
        assert "set solve seconds" not in EngineMetrics().render()


class TestExplanationDelta:
    def _explanation_dict(self, name="check_data"):
        analysis = get_benchmark(name).make_analysis()
        return explanation_to_dict(explain_bound(analysis))

    def test_self_diff_is_unchanged(self):
        payload = self._explanation_dict()
        delta = diff_explanations(payload, payload)
        assert delta.unchanged
        assert delta.bound_delta == 0
        assert "(no differences)" in render_explanation_delta(delta)

    def test_detects_bound_binding_and_breakdown_changes(self):
        before = self._explanation_dict()
        after = json.loads(json.dumps(before))       # deep copy
        after["bound"] += 40
        after["set_index"] = before["set_index"] + 1
        moved = after["breakdown"][0]
        moved["count"] += 2
        moved["cycles"] += 40
        after["binding"] = [line for line in after["binding"][1:]]
        after["binding"].append({"kind": "functionality",
                                 "label": "x9 = 1", "text": "x9 = 1",
                                 "slack": 0.0, "binding": True})

        delta = diff_explanations(before, after)
        assert not delta.unchanged
        assert delta.bound_delta == 40
        assert delta.set_index_change == (before["set_index"],
                                          before["set_index"] + 1)
        assert [l["label"] for l in delta.binding_added] == ["x9 = 1"]
        assert (delta.binding_removed[0]["label"]
                == before["binding"][0]["label"])
        assert delta.rows[0].var == moved["var"]
        assert delta.rows[0].delta_cycles == pytest.approx(40)

        text = render_explanation_delta(delta)
        assert "-> " in text and "(+40)" in text
        assert "+ [functionality]" in text
        assert "per-block breakdown changes" in text

        payload = explanation_delta_to_dict(delta)
        parsed = json.loads(json.dumps(payload))
        assert parsed["bound_delta"] == 40
        assert parsed["rows"][0]["delta_cycles"] == 40
        assert parsed["unchanged"] is False

    def test_identity_mismatch_is_noted(self):
        before = self._explanation_dict("check_data")
        after = self._explanation_dict("piksrt")
        delta = diff_explanations(before, after)
        assert any("entry differs" in note for note in delta.notes)
        assert "**" in render_explanation_delta(delta)


class TestEngineMetricsFacade:
    def test_backed_by_registry(self):
        metrics = EngineMetrics()
        metrics.registry.counter("engine.lp_calls").inc(3)
        assert metrics.lp_calls == 3
        dump = metrics.to_dict()
        assert "registry" in dump
        clone = EngineMetrics.from_dict(dump)
        redump = clone.to_dict()
        redump["registry"].pop("_ts", None)    # fresh capture stamp
        dump["registry"].pop("_ts", None)
        assert redump == dump

    def test_legacy_flat_dict_still_loads(self):
        metrics = EngineMetrics()
        flat = {k: v for k, v in metrics.to_dict().items()
                if k != "registry"}
        flat["lp_calls"] = 9
        assert EngineMetrics.from_dict(flat).lp_calls == 9


# ----------------------------------------------------------------------
# Chrome exporter
# ----------------------------------------------------------------------
class TestChromeExport:
    def make_records(self):
        tracer = Tracer()
        with tracer.span("solve", cat="pipeline", sets=2):
            with tracer.span("bnb", cat="solver") as span:
                span.inc("pivots", 5)
        return tracer.records()

    def test_to_chrome_structure(self):
        records = self.make_records()
        document = to_chrome(records)
        events = document["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        # One process_name metadata event per distinct pid.
        assert len(metadata) == len({r["pid"] for r in records}) == 1
        assert metadata[0]["args"]["name"] == "repro"
        assert {e["name"] for e in spans} == {"solve", "bnb"}
        for event, record in zip(spans, records):
            assert event["ts"] == pytest.approx(record["ts"] * 1e6)
            assert event["dur"] == pytest.approx(record["dur"] * 1e6,
                                                 abs=1e-3)
            assert event["args"] == record["args"]

    def test_worker_pids_get_their_own_track(self):
        records = self.make_records()
        shipped = [dict(r, pid=r["pid"] + 1) for r in records]
        document = to_chrome(records + shipped)
        names = [e["args"]["name"] for e in document["traceEvents"]
                 if e["ph"] == "M"]
        assert names == ["repro", "repro worker 1"]

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self.make_records(), path)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in document["traceEvents"])


# ----------------------------------------------------------------------
# Golden files: trace shape and explanation text
# ----------------------------------------------------------------------
def traced_estimate(name):
    bench = get_benchmark(name)
    tracer = Tracer()
    analysis = bench.make_analysis(tracer=tracer)
    report = analysis.estimate()
    return analysis, report, tracer


@pytest.mark.parametrize("name", ["check_data", "piksrt"])
def test_trace_skeleton_matches_golden(name):
    _, _, tracer = traced_estimate(name)
    expected = (GOLDEN / f"{name}_trace_skeleton.txt").read_text()
    assert "\n".join(trace_skeleton(tracer.records())) + "\n" == expected


@pytest.mark.parametrize("name", ["check_data", "piksrt"])
def test_explanation_matches_golden(name):
    analysis, report, _ = traced_estimate(name)
    explanation = explain_bound(analysis, report)
    expected = (GOLDEN / f"{name}_explain.txt").read_text()
    assert render_explanation(explanation) + "\n" == expected


# ----------------------------------------------------------------------
# Explainer properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["check_data", "piksrt", "fft"])
def test_witness_satisfies_winning_set(name):
    """The explainer's witness must be a genuine feasible point: it
    satisfies *every* constraint (and integrality) of the winning
    set's worst-case ILP, and its objective value is the bound."""
    bench = get_benchmark(name)
    analysis = bench.make_analysis()
    report = analysis.estimate()
    explanation = explain_bound(analysis, report)
    task = analysis.set_tasks()[explanation.set_index]
    worst_problem, _ = task.problems()
    assert worst_problem.check(explanation.witness)
    value = task.worst_obj.evaluate(explanation.witness)
    assert value == pytest.approx(explanation.bound)


@pytest.mark.parametrize("name", ["check_data", "piksrt", "fft"])
def test_breakdown_sums_to_bound(name):
    bench = get_benchmark(name)
    analysis = bench.make_analysis()
    explanation = explain_bound(analysis)
    assert explanation.consistent
    assert sum(r.cycles for r in explanation.breakdown) \
        == pytest.approx(explanation.total)
    assert explanation.bound == analysis.estimate().worst


def test_explain_best_direction():
    bench = get_benchmark("check_data")
    analysis = bench.make_analysis()
    report = analysis.estimate()
    explanation = explain_bound(analysis, report, direction="best")
    assert explanation.direction == "best"
    assert explanation.bound == report.best
    assert explanation.consistent


def test_explanation_to_dict_is_json_safe():
    bench = get_benchmark("check_data")
    analysis = bench.make_analysis()
    payload = explanation_to_dict(explain_bound(analysis))
    parsed = json.loads(json.dumps(payload))
    assert parsed["bound"] == payload["bound"]
    assert parsed["consistent"] is True


def test_explain_rejects_unknown_direction():
    bench = get_benchmark("check_data")
    analysis = bench.make_analysis()
    with pytest.raises(AnalysisError):
        explain_bound(analysis, analysis.estimate(), direction="sideways")


# ----------------------------------------------------------------------
# Per-direction relaxation flags
# ----------------------------------------------------------------------
def test_expired_timeout_flags_each_direction():
    bench = get_benchmark("check_data")
    analysis = bench.make_analysis()
    tight = analysis.estimate()
    relaxed = bench.make_analysis().estimate(set_timeout=0.0)
    assert relaxed.relaxed_sets  # every set degraded
    for result in relaxed.set_results:
        assert result.worst_relaxed and result.best_relaxed
        assert result.relaxed and result.timed_out
    # Degraded bounds stay sound: relaxation max >= ILP max,
    # relaxation min <= ILP min.
    assert relaxed.worst >= tight.worst
    assert relaxed.best <= tight.best
    explanation = explain_bound(analysis, relaxed)
    assert not explanation.tight
    assert "relaxation" in render_explanation(explanation)


def test_untimed_run_has_no_relaxed_sets():
    report = get_benchmark("check_data").make_analysis().estimate()
    assert report.relaxed_sets == []
    assert all(not r.relaxed for r in report.set_results)


# ----------------------------------------------------------------------
# Budget-aware cache keys
# ----------------------------------------------------------------------
def test_budget_key_distinguishes_solver_budgets():
    bench = get_benchmark("check_data")
    tasks = bench.make_analysis().set_tasks()
    default = tasks[0].budget_key()
    timed = bench.make_analysis().set_tasks(set_timeout=1.5)[0]
    capped = bench.make_analysis().set_tasks(max_iterations=100)[0]
    assert timed.budget_key() != default
    assert capped.budget_key() != default
    assert timed.budget_key() != capped.budget_key()


def test_cache_keys_include_budget(tmp_path):
    cache = ResultCache(tmp_path)
    signature, machine = "max: x1\nx1 <= 3", "m1"
    base = cache.set_key(signature, machine, "simplex")
    timed = cache.set_key(signature, machine, "simplex",
                          budget="timeout=1.0|max_iterations=None")
    assert base != timed
    assert cache.job_key("fp") != cache.job_key("fp", budget="timeout=1.0")
    # Same budget, same everything -> stable key.
    assert base == cache.set_key(signature, machine, "simplex")

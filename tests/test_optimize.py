"""Tests for constant folding and the IR960 peephole optimizer,
including differential testing against unoptimized code."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.codegen import Op, compile_source
from repro.lang import ast, frontend
from repro.lang.fold import fold_program
from repro.sim import run_program


def folded(source):
    return fold_program(frontend(source))


def fn_body(program, name="f"):
    return program.function(name).body


class TestConstantFolding:
    def test_arithmetic_folds(self):
        program = folded("int f() { return 2 + 3 * 4; }")
        ret = fn_body(program).stmts[0]
        assert isinstance(ret.value, ast.IntLit)
        assert ret.value.value == 14

    def test_division_truncates_like_c(self):
        program = folded("int f() { return -7 / 2; }")
        assert fn_body(program).stmts[0].value.value == -3

    def test_modulo_sign(self):
        program = folded("int f() { return -7 % 2; }")
        assert fn_body(program).stmts[0].value.value == -1

    def test_division_by_zero_not_folded(self):
        program = folded("int f() { return 1 / 0; }")
        assert isinstance(fn_body(program).stmts[0].value, ast.Binary)

    def test_float_folds(self):
        program = folded("float f() { return 0.5 * 4.0 + 1.0; }")
        value = fn_body(program).stmts[0].value
        assert isinstance(value, ast.FloatLit)
        assert value.value == 3.0

    def test_comparison_folds(self):
        program = folded("int f() { return 3 < 5; }")
        assert fn_body(program).stmts[0].value.value == 1

    def test_unary_folds(self):
        program = folded("int f() { return -(2 + 3) + ~0 + !7; }")
        assert fn_body(program).stmts[0].value.value == -6

    def test_shortcircuit_keeps_side_effects(self):
        # 1 && g() must still call g.
        source = """
        int hits;
        int g() { hits = hits + 1; return 0; }
        int f() { return 1 && g(); }
        """
        program = compile_source(source, optimize=True)
        result = run_program(program, "f")
        assert result.value == 0
        interp_hits = run_program(program, "f").counts
        # g executed: its entry instruction ran.
        entry = program.functions["g"].entry_index
        assert result.counts[entry] == 1

    def test_shortcircuit_drops_unreachable_side_effects(self):
        source = """
        int hits;
        int g() { hits = hits + 1; return 1; }
        int f() { return 0 && g(); }
        """
        program = compile_source(source, optimize=True)
        result = run_program(program, "f")
        assert result.value == 0
        entry = program.functions["g"].entry_index
        assert result.counts[entry] == 0

    def test_dead_then_branch_removed(self):
        source = "int f() { if (0) return 1; return 2; }"
        plain = compile_source(source)
        opt = compile_source(source, optimize=True)
        assert len(opt.code) < len(plain.code)
        assert run_program(opt, "f").value == 2

    def test_constant_true_if_keeps_then(self):
        source = "int f() { if (1) return 1; return 2; }"
        opt = compile_source(source, optimize=True)
        assert run_program(opt, "f").value == 1

    def test_while_false_removed(self):
        source = "int f() { int s = 0; while (0) s++; return s; }"
        opt = compile_source(source, optimize=True)
        assert run_program(opt, "f").value == 0
        # No loop left in the optimized CFG.
        from repro.cfg import build_cfg, find_loops

        assert find_loops(build_cfg(opt, opt.functions["f"])) == []

    def test_ternary_folds(self):
        program = folded("int f() { return 1 ? 10 : 20; }")
        assert fn_body(program).stmts[0].value.value == 10


class TestPeephole:
    def test_immediate_fusion_shrinks_code(self):
        source = "int f(int a) { return a + 1; }"
        plain = compile_source(source)
        opt = compile_source(source, optimize=True)
        assert len(opt.code) < len(plain.code)
        # The ADD now carries the immediate.
        add = next(i for i in opt.code if i.op is Op.ADD)
        assert add.imm == 1 and add.src2 is None

    def test_commutative_fusion(self):
        source = "int f(int a) { return 1 + a; }"
        opt = compile_source(source, optimize=True)
        add = next(i for i in opt.code if i.op is Op.ADD)
        assert add.imm == 1
        assert run_program(opt, "f", 41).value == 42

    def test_branch_immediate_fusion(self):
        source = "int f(int a) { if (a < 10) return 1; return 0; }"
        opt = compile_source(source, optimize=True)
        branch = next(i for i in opt.code if i.is_conditional)
        assert branch.imm == 10
        assert run_program(opt, "f", 5).value == 1
        assert run_program(opt, "f", 15).value == 0

    def test_strength_reduction(self):
        source = "int f(int a) { return a * 8; }"
        opt = compile_source(source, optimize=True)
        ops = [i.op for i in opt.code]
        assert Op.MUL not in ops
        assert Op.SHL in ops
        assert run_program(opt, "f", 5).value == 40

    def test_non_power_of_two_kept(self):
        source = "int f(int a) { return a * 6; }"
        opt = compile_source(source, optimize=True)
        assert any(i.op is Op.MUL for i in opt.code)
        assert run_program(opt, "f", 7).value == 42

    def test_branch_targets_survive_deletion(self):
        source = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) s += 3;
                else s -= 1;
            }
            return s;
        }
        """
        opt = compile_source(source, optimize=True)
        for instr in opt.code:
            if instr.is_branch:
                assert 0 <= instr.target < len(opt.code)
        assert run_program(opt, "f", 5).value == 7

    def test_optimized_worst_bound_not_larger(self):
        from repro import Analysis

        source = """
        int data[8];
        int f() {
            int s = 0;
            for (int i = 0; i < 8; i++) s += data[i] * 4;
            return s;
        }
        """
        plain = Analysis(compile_source(source), entry="f")
        plain.bound_loop(lo=8, hi=8)
        opt = Analysis(compile_source(source, optimize=True), entry="f")
        opt.bound_loop(lo=8, hi=8)
        assert opt.estimate().worst < plain.estimate().worst


class TestDifferential:
    """Optimized and unoptimized code must agree functionally."""

    SOURCES = [
        ("int f(int a, int b) { return (a + 2 * 3) % (b + 1); }",
         [(5, 3), (-9, 2), (100, 6)]),
        ("int f(int n) { int s = 0;\n"
         " for (int i = 0; i < n; i++) s += i * 2;\n return s; }",
         [(0,), (1,), (9,)]),
        ("float f(float x) { return 2.0 * x + 1.5 * 2.0; }",
         [(0.5,), (-2.0,)]),
        ("int f(int a) { return a > 0 && a < 10; }",
         [(5,), (-1,), (20,)]),
        ("int f(int a) { if (a * 0 + 1) return a << 1; return 0; }",
         [(3,), (-3,)]),
    ]

    @pytest.mark.parametrize("case", range(len(SOURCES)))
    def test_same_results(self, case):
        source, arglists = self.SOURCES[case]
        plain = compile_source(source)
        opt = compile_source(source, optimize=True)
        for args in arglists:
            a = run_program(plain, "f", *args).value
            b = run_program(opt, "f", *args).value
            assert a == pytest.approx(b)

    def test_benchmarks_functionally_identical_when_optimized(self):
        """Compile three real benchmarks with optimization and compare
        results on their datasets."""
        from repro.programs import get_benchmark

        for name in ("check_data", "piksrt", "jpeg_fdct_islow"):
            bench = get_benchmark(name)
            opt = compile_source(bench.source, optimize=True)
            assert len(opt.code) <= len(bench.program.code)
            for dataset in (bench.best_data, bench.worst_data):
                want = bench.run(dataset)
                interp_globals = dataset.globals
                got = run_program(opt, bench.entry, *dataset.args,
                                  globals_init=dict(interp_globals))
                assert got.value == want.value

    def test_random_programs_agree(self):
        from repro.synth import random_minic_cases

        for source, inputs in random_minic_cases(seed=42, count=25):
            plain = compile_source(source)
            opt = compile_source(source, optimize=True)
            a = run_program(plain, "f", globals_init=dict(inputs))
            b = run_program(opt, "f", globals_init=dict(inputs))
            assert a.value == b.value, source

"""Tests for extreme-case path reconstruction from ILP counts."""

import pytest

from repro import Analysis
from repro.analysis import best_case_path, extract_path, worst_case_path
from repro.errors import AnalysisError
from repro.programs import get_benchmark

LOOP = """
int data[10];
int f() {
    int s = 0;
    for (int i = 0; i < 10; i++)
        s += data[i];
    return s;
}
"""

BRANCH = """
float f(int p, float x) {
    if (p)
        return x + 1.0;
    return sin(x) * cos(x);
}
"""


class TestExtraction:
    def test_path_matches_counts(self):
        analysis = Analysis(LOOP, entry="f")
        analysis.bound_loop(lo=10, hi=10)
        report = analysis.estimate()
        trace = extract_path(analysis.cfgs["f"], report.worst_counts)
        # The path realizes exactly the ILP's block counts.
        observed = trace.block_counts()
        for block in analysis.cfgs["f"].blocks.values():
            want = report.worst_counts.get(f"f::{block.var}", 0)
            assert observed.get(block.id, 0) == int(want)

    def test_path_follows_real_edges(self):
        analysis = Analysis(LOOP, entry="f")
        analysis.bound_loop(lo=10, hi=10)
        trace = worst_case_path(analysis)
        cfg = analysis.cfgs["f"]
        for a, b in zip(trace.blocks, trace.blocks[1:]):
            assert b in cfg.successors(a), f"no edge B{a}->B{b}"
        assert trace.blocks[0] == cfg.entry_block

    def test_worst_takes_expensive_branch(self):
        analysis = Analysis(BRANCH, entry="f")
        worst = worst_case_path(analysis)
        best = best_case_path(analysis)
        # The transcendental block only appears on the worst path.
        cfg = analysis.cfgs["f"]
        from repro.codegen.isa import Op

        def hits_sin(trace):
            return any(
                any(i.op is Op.SIN for i in cfg.blocks[b].instrs)
                for b in trace.blocks)

        assert hits_sin(worst)
        assert not hits_sin(best)

    def test_loop_repetition_visible_in_line_trace(self):
        analysis = Analysis(LOOP, entry="f")
        analysis.bound_loop(lo=10, hi=10)
        trace = worst_case_path(analysis)
        encoded = dict(trace.line_trace())
        # The body line (6) repeats; run-length encoding merges only
        # adjacent repeats so just check total block visits.
        body_visits = sum(1 for line in trace.lines if line == 6)
        assert body_visits == 10

    def test_str_rendering(self):
        analysis = Analysis(BRANCH, entry="f")
        trace = worst_case_path(analysis)
        text = str(trace)
        assert text.startswith("f: B1")
        assert "->" in text

    def test_check_data_worst_path_loops_ten_times(self):
        bench = get_benchmark("check_data")
        analysis = bench.make_analysis()
        trace = worst_case_path(analysis)
        # Header block (B2) runs 11 times in the worst case: 10 body
        # passes plus the final failing test.
        counts = trace.block_counts()
        assert counts[2] == 11

    def test_zero_flow_rejected(self):
        analysis = Analysis(LOOP, entry="f")
        with pytest.raises(AnalysisError):
            extract_path(analysis.cfgs["f"], {})

    def test_unknown_function_rejected(self):
        analysis = Analysis(LOOP, entry="f")
        analysis.bound_loop(lo=10, hi=10)
        with pytest.raises(AnalysisError):
            worst_case_path(analysis, function="ghost")

    def test_ilp_worst_path_equals_trace_on_unique_witness(self):
        """jpeg_idct's worst data drives a unique extreme path: the
        ILP's reconstruction IS the simulated block trace."""
        from repro.sim import record_block_trace

        bench = get_benchmark("jpeg_idct_islow")
        analysis = bench.make_analysis()
        ilp = worst_case_path(analysis)
        trace = record_block_trace(
            bench.program, bench.entry,
            globals_init=dict(bench.worst_data.globals))
        assert trace.for_function(bench.entry) == ilp.blocks

    @pytest.mark.parametrize("name", ["check_data", "circle", "recon"])
    def test_ilp_worst_path_dominates_simulated_trace(self, name):
        """In general the ILP's worst witness need not equal the
        simulated worst-data path (several count vectors can tie or
        beat it), but its cost never falls below the trace's cost
        under the same worst-case block costs."""
        from repro.hw import cost_table, i960kb
        from repro.sim import record_block_trace

        bench = get_benchmark(name)
        analysis = bench.make_analysis()
        ilp = worst_case_path(analysis)
        trace = record_block_trace(
            bench.program, bench.entry,
            globals_init=dict(bench.worst_data.globals))
        costs = cost_table(analysis.cfgs[bench.entry], i960kb())

        def cost(blocks):
            return sum(costs[b].worst for b in blocks)

        assert cost(ilp.blocks) >= cost(trace.for_function(bench.entry))

    def test_disconnected_flow_rejected(self):
        analysis = Analysis(LOOP, entry="f")
        analysis.bound_loop(lo=10, hi=10)
        cfg = analysis.cfgs["f"]
        # Fabricate a circulation on the loop with no entry flow.
        from repro.cfg import find_loops

        loop = find_loops(cfg)[0]
        counts = {}
        back = loop.back_edges[0]
        counts[f"f::{back.name}"] = 3
        # Header in/out through the back edge only + fake exit flow.
        with pytest.raises(AnalysisError):
            extract_path(cfg, counts)

"""Tests for the 13 Table-I benchmark programs.

Per benchmark: functional correctness, and the Fig.-1 soundness chain
``E_l <= C_l <= C_u <= E_u`` and ``E_l <= M_l <= M_u <= E_u`` that
Tables II and III rest on.
"""

import math

import pytest

from repro import calculated_bound, measure_bounds
from repro.programs import all_benchmarks, get_benchmark

BENCHMARKS = all_benchmarks()
NAMES = sorted(BENCHMARKS)

_reports = {}


def report_for(name):
    if name not in _reports:
        analysis = BENCHMARKS[name].make_analysis()
        _reports[name] = analysis.estimate()
    return _reports[name]


class TestRegistry:
    def test_thirteen_benchmarks(self):
        assert len(BENCHMARKS) == 13

    def test_paper_row_order(self):
        assert list(BENCHMARKS) == [
            "check_data", "fft", "piksrt", "des", "line", "circle",
            "jpeg_fdct_islow", "jpeg_idct_islow", "recon", "fullsearch",
            "whetstone", "dhry", "matgen"]

    def test_get_benchmark_unknown(self):
        with pytest.raises(KeyError):
            get_benchmark("quicksort")

    def test_line_counts_reported(self):
        for bench in BENCHMARKS.values():
            assert bench.lines > 5


@pytest.mark.parametrize("name", NAMES)
class TestPerBenchmark:
    def test_runs_on_both_datasets(self, name):
        bench = BENCHMARKS[name]
        best = bench.run(bench.best_data)
        worst = bench.run(bench.worst_data)
        if bench.expected_values is not None:
            assert best.value == bench.expected_values[0]
            assert worst.value == bench.expected_values[1]

    def test_estimate_is_ordered(self, name):
        report = report_for(name)
        assert 0 < report.best <= report.worst

    def test_soundness_vs_calculated(self, name):
        bench = BENCHMARKS[name]
        report = report_for(name)
        calc = calculated_bound(bench.program, bench.entry,
                                bench.best_data, bench.worst_data)
        assert report.best <= calc.best, f"{name}: best bound unsound"
        assert calc.worst <= report.worst, f"{name}: worst bound unsound"
        assert calc.best <= calc.worst

    def test_soundness_vs_measured(self, name):
        bench = BENCHMARKS[name]
        report = report_for(name)
        measured = measure_bounds(bench.program, bench.entry,
                                  bench.best_data, bench.worst_data)
        assert report.encloses(measured.interval), (
            f"{name}: estimate {report.interval} does not enclose "
            f"measured {measured.interval}")

    def test_first_lp_relaxation_integral(self, name):
        # The §VI-A claim, on the real benchmark suite.
        assert report_for(name).all_first_relaxations_integral


class TestSpecificBehaviours:
    def test_check_data_two_sets(self):
        assert report_for("check_data").sets_solved == 2

    def test_dhry_paper_set_counts(self):
        # "Of the eight constraint sets of function dhry, five of them
        # are detected as null sets and eliminated."
        report = report_for("dhry")
        assert report.sets_total == 8
        assert report.sets_pruned == 5
        assert report.sets_solved == 3

    def test_recon_four_variant_sets(self):
        assert report_for("recon").sets_solved == 4

    def test_fft_matches_numpy(self):
        import numpy as np

        bench = BENCHMARKS["fft"]
        rng = np.random.default_rng(7)
        re = rng.uniform(-1, 1, 32)
        im = rng.uniform(-1, 1, 32)
        from repro.sim import Dataset

        result = bench.run(Dataset(globals={"re": list(re),
                                            "im": list(im)}))
        interp_re = result  # values live in globals; re-read them
        from repro.sim import Interpreter

        interp = Interpreter(bench.program)
        interp.set_global("re", list(re))
        interp.set_global("im", list(im))
        interp.run("fft")
        got = (np.array(interp.get_global("re"))
               + 1j * np.array(interp.get_global("im")))
        want = np.fft.fft(re + 1j * im)
        assert np.allclose(got, want, atol=1e-9)

    def test_fft_constraint_constants_match_observation(self):
        # The exact trip-count constraints baked into the fft benchmark
        # must match what actually executes.
        bench = BENCHMARKS["fft"]
        analysis = bench.make_analysis()
        report = analysis.estimate()
        calc = calculated_bound(bench.program, bench.entry,
                                bench.best_data, bench.worst_data)
        # Data-independent control flow: calculated interval endpoints
        # come from identical count vectors.
        assert calc.best_result.counts == calc.worst_result.counts

    def test_piksrt_sorts(self):
        from repro.sim import Interpreter

        bench = BENCHMARKS["piksrt"]
        interp = Interpreter(bench.program)
        interp.set_global("arr", [5, 3, 9, 1, 7, 0, 8, 2, 6, 4])
        interp.run("piksrt")
        assert interp.get_global("arr") == list(range(10))

    def test_des_round_trip(self):
        from repro.programs.des import KEY_BITS, PLAIN_BITS
        from repro.sim import Interpreter

        bench = BENCHMARKS["des"]
        interp = Interpreter(bench.program)
        interp.set_global("key", KEY_BITS)
        interp.set_global("message", PLAIN_BITS)
        interp.set_global("decrypt", 0)
        interp.run("des")
        cipher = interp.get_global("output")
        assert cipher != PLAIN_BITS
        interp2 = Interpreter(bench.program)
        interp2.set_global("key", KEY_BITS)
        interp2.set_global("message", cipher)
        interp2.set_global("decrypt", 1)
        interp2.run("des")
        assert interp2.get_global("output") == PLAIN_BITS

    def test_line_clips_and_draws_diagonal(self):
        from repro.sim import Interpreter

        bench = BENCHMARKS["line"]
        interp = Interpreter(bench.program)
        interp.set_global("gx0", -32)
        interp.set_global("gy0", -32)
        interp.set_global("gx1", 95)
        interp.set_global("gy1", 95)
        interp.run("line")
        image = interp.get_global("image")
        assert interp.get_global("accepted") == 1
        assert image[0] == 1                  # clipped to (0, 0)
        assert image[63 * 64 + 63] == 1       # clipped to (63, 63)
        assert sum(image) == 64               # exactly the diagonal

    def test_line_rejects_invisible_segment(self):
        from repro.sim import Interpreter

        bench = BENCHMARKS["line"]
        interp = Interpreter(bench.program)
        for name, value in bench.best_data.globals.items():
            interp.set_global(name, value)
        interp.run("line")
        assert interp.get_global("accepted") == 0
        assert sum(interp.get_global("image")) == 0

    def test_line_worst_data_draws_long_walk(self):
        bench = BENCHMARKS["line"]
        result = bench.run(bench.worst_data)
        from repro.sim import Interpreter

        interp = Interpreter(bench.program)
        for name, value in bench.worst_data.globals.items():
            interp.set_global(name, value)
        interp.run("line")
        image = interp.get_global("image")
        assert sum(image) >= 60               # near-full major extent

    def test_circle_plots_cardinal_points(self):
        from repro.sim import Interpreter

        bench = BENCHMARKS["circle"]
        interp = Interpreter(bench.program)
        for name, value in bench.worst_data.globals.items():
            interp.set_global(name, value)
        interp.run("circle")
        image = interp.get_global("image")
        assert image[64 * 128 + 96] == 1      # (cx+32, cy)
        assert image[96 * 128 + 64] == 1      # (cx, cy+32)
        assert image[64 * 128 + 32] == 1      # (cx-32, cy)

    def test_fdct_of_flat_block_is_dc_only(self):
        from repro.sim import Interpreter

        bench = BENCHMARKS["jpeg_fdct_islow"]
        interp = Interpreter(bench.program)
        interp.set_global("block", [7] * 64)
        interp.run("jpeg_fdct_islow")
        out = interp.get_global("block")
        assert out[0] == 64 * 7
        assert all(v == 0 for v in out[1:])

    def test_idct_of_dc_only_is_flat(self):
        from repro.sim import Interpreter

        bench = BENCHMARKS["jpeg_idct_islow"]
        interp = Interpreter(bench.program)
        interp.set_global("coef", [512] + [0] * 63)
        interp.run("jpeg_idct_islow")
        out = interp.get_global("pixel")
        assert len(set(out)) == 1             # perfectly flat
        assert out[0] == 64                   # 512/8 = 64

    def test_fdct_idct_round_trip(self):
        # Chain the two JPEG benchmarks: idct(fdct(x)) ~ x.
        from repro.programs.jpeg_fdct import SAMPLE_BLOCK
        from repro.sim import Interpreter

        fdct = BENCHMARKS["jpeg_fdct_islow"]
        idct = BENCHMARKS["jpeg_idct_islow"]
        interp = Interpreter(fdct.program)
        interp.set_global("block", SAMPLE_BLOCK)
        interp.run("jpeg_fdct_islow")
        coef = interp.get_global("block")

        # The FDCT output is scaled by 8; in libjpeg the divide lives
        # in quantization, so model a unit quantizer here.
        dequantized = [int(round(c / 8)) for c in coef]
        interp2 = Interpreter(idct.program)
        interp2.set_global("coef", dequantized)
        interp2.run("jpeg_idct_islow")
        out = interp2.get_global("pixel")
        for got, want in zip(out, SAMPLE_BLOCK):
            assert abs(got - want) <= 2

    def test_recon_full_pel_copies(self):
        from repro.sim import Interpreter

        bench = BENCHMARKS["recon"]
        interp = Interpreter(bench.program)
        for name, value in bench.best_data.globals.items():
            interp.set_global(name, value)
        interp.run("recon")
        cur = interp.get_global("cur")
        ref = interp.get_global("ref")
        p = 2 * 32 + 3
        for i in range(16):
            for j in range(16):
                assert cur[i * 32 + j] == ref[p + i * 32 + j]

    def test_fullsearch_finds_zero_at_match(self):
        bench = BENCHMARKS["fullsearch"]
        result = bench.run(bench.best_data)
        assert result.value == 0

    def test_whetstone_converges(self):
        bench = BENCHMARKS["whetstone"]
        value = bench.run(bench.best_data).value
        assert math.isfinite(value)
        assert 0.7 < value < 0.9              # x drifts slowly toward 1

    def test_dhry_deterministic_checksum(self):
        bench = BENCHMARKS["dhry"]
        first = bench.run(bench.best_data).value
        second = bench.run(bench.worst_data).value
        assert first == second

    def test_matgen_norma_positive(self):
        bench = BENCHMARKS["matgen"]
        value = bench.run(bench.best_data).value
        assert 0.0 < value <= 2.0

"""Property-based tests (hypothesis) for core invariants.

The heavyweight property at the end generates random structured MiniC
programs, runs them, and checks the whole-pipeline soundness invariant:
every observed execution satisfies the structural constraints and its
cost lies inside the IPET estimate.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints import parse_constraint, trivially_null
from repro.ilp import LinExpr, Problem, Status, Var
from repro.sim.interp import _c_div, _c_rem

# ----------------------------------------------------------------------
# Linear expression algebra
# ----------------------------------------------------------------------
names = st.sampled_from(["a", "b", "c", "d"])
coefs = st.integers(-50, 50)
assignments = st.fixed_dictionaries(
    {n: st.integers(-100, 100) for n in ["a", "b", "c", "d"]})


@st.composite
def lin_exprs(draw):
    expr = LinExpr({}, draw(coefs))
    for _ in range(draw(st.integers(0, 4))):
        expr = expr + draw(coefs) * Var(draw(names))
    return expr


class TestExprAlgebra:
    @given(lin_exprs(), lin_exprs(), assignments)
    def test_addition_is_pointwise(self, e1, e2, env):
        assert (e1 + e2).evaluate(env) == pytest.approx(
            e1.evaluate(env) + e2.evaluate(env))

    @given(lin_exprs(), coefs, assignments)
    def test_scaling_is_pointwise(self, e, k, env):
        assert (e * k).evaluate(env) == pytest.approx(k * e.evaluate(env))

    @given(lin_exprs(), assignments)
    def test_negation(self, e, env):
        assert (-e).evaluate(env) == pytest.approx(-e.evaluate(env))

    @given(lin_exprs(), lin_exprs(), assignments)
    def test_constraint_semantics(self, e1, e2, env):
        le = e1 <= e2
        ge = e1 >= e2
        eq = e1 == e2
        v1, v2 = e1.evaluate(env), e2.evaluate(env)
        assert le.satisfied_by(env) == (v1 <= v2 + 1e-6)
        assert ge.satisfied_by(env) == (v1 >= v2 - 1e-6)
        assert eq.satisfied_by(env) == (abs(v1 - v2) <= 1e-6)


# ----------------------------------------------------------------------
# C integer semantics used by the interpreter
# ----------------------------------------------------------------------
class TestCArithmetic:
    @given(st.integers(-10**9, 10**9),
           st.integers(-10**9, 10**9).filter(lambda b: b != 0))
    def test_div_rem_identity(self, a, b):
        q, r = _c_div(a, b), _c_rem(a, b)
        assert a == b * q + r
        assert abs(r) < abs(b)
        assert r == 0 or (r > 0) == (a > 0)

    @given(st.integers(-10**6, 10**6),
           st.integers(1, 10**6))
    def test_div_truncates_toward_zero(self, a, b):
        assert _c_div(a, b) == math.trunc(a / b)


# ----------------------------------------------------------------------
# DNF expansion and null pruning
# ----------------------------------------------------------------------
@st.composite
def simple_formulas(draw):
    """Random (dis/con)junctions of single-variable relations."""
    var = ["x1", "x2", "x3"]

    def relation():
        v = draw(st.sampled_from(var))
        op = draw(st.sampled_from(["=", "<=", ">="]))
        k = draw(st.integers(0, 4))
        return f"{v} {op} {k}"

    def conj():
        return " & ".join(relation()
                          for _ in range(draw(st.integers(1, 2))))

    text = " | ".join(f"({conj()})"
                      for _ in range(draw(st.integers(1, 3))))
    return text


def _holds(text: str, env: dict) -> bool:
    """Directly evaluate a formula string under an assignment."""
    formula = parse_constraint(text)
    return any(all(r.resolve(lambda ref: LinExpr({ref.local: 1.0}))
                   .satisfied_by(env) for r in conjunct)
               for conjunct in formula.sets)


class TestDNF:
    @given(simple_formulas(),
           st.fixed_dictionaries({v: st.integers(0, 5)
                                  for v in ["x1", "x2", "x3"]}))
    def test_dnf_preserves_semantics(self, text, env):
        # Re-parsing and expanding must not change satisfiability:
        # compare against evaluating each disjunct of the original text.
        formula = parse_constraint(text)
        expanded = _holds(text, env)
        direct = any(
            all(r.resolve(lambda ref: LinExpr({ref.local: 1.0}))
                .satisfied_by(env) for r in conjunct)
            for conjunct in formula.sets)
        assert expanded == direct

    @given(simple_formulas())
    def test_trivially_null_is_sound(self, text):
        # If a conjunct set is pruned as null, no nonnegative integer
        # assignment in a generous box satisfies it.
        formula = parse_constraint(text)
        for conjunct in formula.sets:
            if not trivially_null(conjunct):
                continue
            for x1 in range(6):
                for x2 in range(6):
                    for x3 in range(6):
                        env = {"x1": x1, "x2": x2, "x3": x3}
                        sat = all(
                            r.resolve(lambda ref:
                                      LinExpr({ref.local: 1.0}))
                            .satisfied_by(env) for r in conjunct)
                        assert not sat, (text, env)


# ----------------------------------------------------------------------
# Simplex + branch & bound vs scipy on random ILPs
# ----------------------------------------------------------------------
@st.composite
def random_ilps(draw):
    n = draw(st.integers(2, 4))
    problem = Problem("hypothesis")
    xs = [problem.add_var(f"x{j}", upper=draw(st.integers(1, 6)))
          for j in range(n)]
    for _ in range(draw(st.integers(1, 4))):
        expr = LinExpr({x.name: float(draw(st.integers(-3, 3)))
                        for x in xs})
        bound = float(draw(st.integers(-4, 10)))
        if draw(st.booleans()):
            problem.add(expr <= bound)
        else:
            problem.add(expr >= bound)
    objective = LinExpr({x.name: float(draw(st.integers(-4, 4)))
                         for x in xs})
    problem.maximize(objective)
    return problem


class TestSolverAgainstScipy:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_ilps())
    def test_branch_bound_matches_scipy(self, problem):
        ours = problem.solve(backend="simplex")
        ref = problem.solve(backend="scipy")
        assert ours.status is ref.status
        if ours.status is Status.OPTIMAL:
            assert ours.objective == pytest.approx(ref.objective,
                                                   abs=1e-6)
            assert problem.check(ours.values)


# ----------------------------------------------------------------------
# Whole-pipeline soundness on random structured programs
# ----------------------------------------------------------------------
@st.composite
def random_programs(draw):
    """A program from the first-class generator (repro.synth.gen).

    The generator only emits counted loops, so exact bounds are known
    by construction; hypothesis explores (and shrinks over) the
    generator's seed, grade and input seed.
    """
    import random

    from repro.synth import generate

    seed = draw(st.integers(0, 10_000))
    grade = draw(st.sampled_from(["tiny", "small", "medium"]))
    prog = generate(seed, grade=grade)
    rng = random.Random(draw(st.integers(0, 10_000)))
    return prog, prog.random_inputs(rng)


class TestPipelineSoundness:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_programs())
    def test_estimate_encloses_every_run(self, case):
        prog, inputs = case
        report = prog.analysis().estimate()
        result = prog.run(inputs)          # cold-cache cycle run
        assert report.best <= result.cycles <= report.worst

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_programs())
    def test_optimizer_preserves_semantics_and_soundness(self, case):
        """Optimized code computes the same value, and the analysis of
        the optimized binary still bounds its optimized execution."""
        from repro import Analysis
        from repro.codegen import compile_source
        from repro.hw import i960kb
        from repro.sim import CycleModel, Interpreter

        prog, inputs = case
        plain = compile_source(prog.source)
        opt = compile_source(prog.source, optimize=True)

        def run(program):
            model = CycleModel(i960kb())
            model.flush()
            interp = Interpreter(program, cycle_model=model)
            for name, value in inputs.items():
                interp.set_global(name, value)
            return interp.run(prog.entry)

        a, b = run(plain), run(opt)
        assert a.value == b.value

        # The loop headers keep their source lines through the
        # optimizer, so the generator's exact bounds apply as-is.
        analysis = Analysis(opt, entry=prog.entry)
        trips = {(fn, line): (lo, hi)
                 for fn, line, lo, hi in prog.loop_bounds}
        for loop in analysis.loops:
            lo, hi = trips[(loop.function, loop.header_line)]
            analysis.bound_loop(lo=lo, hi=hi, function=loop.function,
                                line=loop.header_line)
        report = analysis.estimate()
        assert report.best <= b.cycles <= report.worst

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(random_programs())
    def test_observed_counts_satisfy_structural_constraints(self, case):
        from repro.cfg import CallGraph, build_cfgs
        from repro.codegen import compile_source
        from repro.constraints import structural_system
        from repro.sim import Interpreter

        prog, inputs = case
        program = compile_source(prog.source)
        cfgs = build_cfgs(program)
        system = structural_system(CallGraph(cfgs), prog.entry)

        interp = Interpreter(program)
        for name, value in inputs.items():
            interp.set_global(name, value)
        result = interp.run(prog.entry)

        # Check only the block-count equalities x_i = sum(in) against
        # x_i = sum(out): both sides reduce to block counters plus edge
        # counters; block counters alone must satisfy the *derived*
        # equality sum(in of B) = sum(out of B) at the join blocks.
        cfg = cfgs[prog.entry]
        counts = {f"{prog.entry}::x{b.id}": result.counts[b.start]
                  for b in cfg.blocks.values()}
        # Entry block runs exactly once.
        assert counts[f"{prog.entry}::x{cfg.entry_block}"] == 1
        # Conservation: a block's count equals the total count of its
        # fall-through/branch realizations, which we verify via the
        # full edge reconstruction already covered in test_structural;
        # here assert the cheap necessary condition: total steps match.
        assert sum(result.counts) == result.steps

"""Tests for bound reports, pessimism arithmetic, annotated listings,
and the constraint naming/inlining helpers."""

import pytest

from repro import Analysis
from repro.analysis import annotate_function, annotate_program, pessimism
from repro.analysis.report import BoundReport, SetResult
from repro.cfg import CallGraph, build_cfgs, expand_contexts, instances_of
from repro.codegen import compile_source
from repro.constraints import (LoopBound, local_part, loop_bound_relations,
                               qualified, scope_part, split)
from repro.errors import AnalysisError
from repro.ilp import SolveStats, Status


class TestPessimism:
    def test_identical_bounds_zero(self):
        assert pessimism((10, 20), (10, 20)) == (0.0, 0.0)

    def test_paper_table3_fft_row(self):
        # E = [0.97e6, 3.35e6], M = [1.93e6, 2.05e6] -> [0.50, 0.63].
        lo, hi = pessimism((0.97e6, 3.35e6), (1.93e6, 2.05e6))
        assert lo == pytest.approx(0.497, abs=0.01)
        assert hi == pytest.approx(0.634, abs=0.01)

    def test_zero_reference_guarded(self):
        assert pessimism((0, 10), (0, 0)) == (0.0, 0.0)

    def test_wider_estimate_more_pessimism(self):
        narrow = pessimism((90, 110), (100, 100))
        wide = pessimism((50, 200), (100, 100))
        assert wide[0] > narrow[0] and wide[1] > narrow[1]


def _report(**kwargs):
    defaults = dict(entry="f", machine="m", best=10, worst=100,
                    set_results=[], sets_total=1, sets_pruned=0)
    defaults.update(kwargs)
    return BoundReport(**defaults)


class TestBoundReport:
    def test_interval_and_encloses(self):
        report = _report()
        assert report.interval == (10, 100)
        assert report.encloses((10, 100))
        assert report.encloses((50, 60))
        assert not report.encloses((5, 60))
        assert not report.encloses((50, 101))

    def test_lp_call_aggregation(self):
        results = [
            SetResult(0, Status.OPTIMAL, stats=SolveStats(
                lp_calls=2, first_relaxation_integral=True)),
            SetResult(1, Status.INFEASIBLE, stats=SolveStats(
                lp_calls=1, first_relaxation_integral=False)),
        ]
        report = _report(set_results=results)
        assert report.lp_calls == 3
        assert report.sets_solved == 2
        # Infeasible sets do not count against integrality.
        assert report.all_first_relaxations_integral

    def test_str_mentions_entry_and_sets(self):
        results = [SetResult(0, Status.OPTIMAL)]
        text = str(_report(set_results=results))
        assert "f" in text and "1 constraint sets" in text


SRC = """
int total;
void leaf(int v) { total = total + v; }
void f(int n) {
    if (n > 0)
        leaf(n);
    else
        leaf(-n);
    total = total * 2;
}
"""


class TestAnnotation:
    def test_function_listing_marks_blocks_and_calls(self):
        program = compile_source(SRC)
        cfgs = build_cfgs(program)
        listing = annotate_function(cfgs["f"], SRC)
        assert "x1" in listing
        assert "f1" in listing and "f2" in listing
        # Line numbers are included.
        assert "leaf(n);" in listing

    def test_program_listing_covers_functions(self):
        program = compile_source(SRC)
        cfgs = build_cfgs(program)
        listing = annotate_program(cfgs, SRC)
        assert "// --- f() ---" in listing
        assert "// --- leaf() ---" in listing

    def test_subset(self):
        program = compile_source(SRC)
        cfgs = build_cfgs(program)
        listing = annotate_program(cfgs, SRC, functions=["leaf"])
        assert "leaf()" in listing and "--- f()" not in listing


class TestNames:
    def test_qualified_roundtrip(self):
        name = qualified("check_data", "x3")
        assert split(name) == ("check_data", "x3")
        assert local_part(name) == "x3"
        assert scope_part(name) == "check_data"

    def test_instance_scopes(self):
        name = qualified("task/f1", "d2")
        assert scope_part(name) == "task/f1"


class TestContextExpansion:
    def test_instances_for_each_call_path(self):
        program = compile_source(SRC)
        graph = CallGraph(build_cfgs(program))
        instances = expand_contexts(graph, "f")
        assert set(instances) == {"f", "f/f1", "f/f2"}
        assert instances["f/f1"].function == "leaf"
        assert instances["f/f2"].parent == "f"

    def test_instances_of(self):
        program = compile_source(SRC)
        graph = CallGraph(build_cfgs(program))
        instances = expand_contexts(graph, "f")
        leafs = instances_of(instances, "leaf")
        assert [i.id for i in leafs] == ["f/f1", "f/f2"]

    def test_nested_chain(self):
        nested = """
        int g;
        void c() { g = g + 1; }
        void b() { c(); }
        void a() { b(); b(); }
        """
        program = compile_source(nested)
        graph = CallGraph(build_cfgs(program))
        instances = expand_contexts(graph, "a")
        # a, two b instances, and a c instance under each b.
        assert len(instances) == 5
        assert sum(1 for i in instances.values()
                   if i.function == "c") == 2


class TestLoopBoundRelations:
    def test_generates_paper_14_15_shape(self):
        program = compile_source("""
            int f(int p) {
                int q; q = p;
                while (q < 10) q++;
                return q;
            }
        """)
        from repro.cfg import build_cfg, find_loops

        cfg = build_cfg(program, program.functions["f"])
        loop = find_loops(cfg)[0]
        low, high = loop_bound_relations(loop, LoopBound(1, 10))
        assert low.sense == ">=" and high.sense == "<="
        # back - lo*entry >= 0 and back - hi*entry <= 0.
        assert set(low.expr.terms.values()) == {1.0, -1.0}
        assert set(high.expr.terms.values()) == {1.0, -10.0}

    def test_invalid_bounds_rejected(self):
        with pytest.raises(AnalysisError):
            LoopBound(-1, 5)
        with pytest.raises(AnalysisError):
            LoopBound(5, 2)


class TestAnalysisMisc:
    def test_expansion_counts_exposed(self):
        analysis = Analysis("int f(int a) { return a; }", entry="f")
        analysis.add_constraint("x1 = 1 | x1 = 2")
        assert analysis.expansion().count == 2

    def test_report_counts_are_integral(self):
        analysis = Analysis(SRC, entry="f")
        report = analysis.estimate()
        for value in report.worst_counts.values():
            assert value == int(value)

    def test_best_counts_differ_from_worst_on_branchy_code(self):
        source = """
        float f(int p) {
            if (p) return 1.0;
            return sin(0.5);
        }
        """
        report = Analysis(source, entry="f").estimate()
        assert report.best_counts != report.worst_counts

"""Tests for the JSON results export and remaining CLI surface."""

import json

import pytest

from repro.experiments import Experiments, collect_results, write_results
from repro.programs import all_benchmarks


@pytest.fixture(scope="module")
def experiments():
    subset = {name: bench for name, bench in all_benchmarks().items()
              if name in ("check_data", "circle")}
    return Experiments(benchmarks=subset)


class TestJSONExport:
    def test_collect_structure(self, experiments):
        data = collect_results(experiments)
        assert data["machine"] == "i960KB"
        assert {row["function"] for row in data["table1"]} == \
            {"check_data", "circle"}
        for key in ("table2", "table3", "solver"):
            assert len(data[key]) == 2

    def test_rows_are_sound_and_serializable(self, experiments):
        data = collect_results(experiments)
        text = json.dumps(data)
        parsed = json.loads(text)
        for row in parsed["table2"] + parsed["table3"]:
            assert row["sound"] is True
            lo, hi = row["estimated"]
            rlo, rhi = row["reference"]
            assert lo <= rlo <= rhi <= hi

    def test_solver_rows(self, experiments):
        data = collect_results(experiments)
        by_name = {row["function"]: row for row in data["solver"]}
        assert by_name["check_data"]["sets_solved"] == 2
        assert by_name["check_data"]["first_relaxations_integral"]

    def test_write_results_file(self, experiments, tmp_path):
        path = tmp_path / "results.json"
        write_results(experiments, str(path))
        data = json.loads(path.read_text())
        assert "table1" in data


class TestCodegenEdgeCases:
    def run(self, src, entry, *args):
        from repro.codegen import compile_source
        from repro.sim import run_program

        return run_program(compile_source(src), entry, *args).value

    def test_do_while_with_break(self):
        src = """
        int f(int n) {
            int i = 0;
            do {
                if (i == n) break;
                i++;
            } while (i < 10);
            return i;
        }
        """
        assert self.run(src, "f", 4) == 4
        assert self.run(src, "f", 99) == 10

    def test_nested_ternary(self):
        src = "int f(int a) { return a > 0 ? (a > 10 ? 2 : 1) : 0; }"
        assert self.run(src, "f", 15) == 2
        assert self.run(src, "f", 5) == 1
        assert self.run(src, "f", -1) == 0

    def test_compound_shift_on_array_element(self):
        src = """
        int a[2];
        int f() { a[1] = 3; a[1] <<= 2; return a[1]; }
        """
        assert self.run(src, "f") == 12

    def test_chained_comparisons_via_logical(self):
        src = "int f(int a) { return 0 < a && a < 10; }"
        assert self.run(src, "f", 5) == 1
        assert self.run(src, "f", 0) == 0
        assert self.run(src, "f", 10) == 0

    def test_ternary_in_condition(self):
        src = "int f(int a, int b) { if ((a > b ? a : b) > 5) return 1;"\
              " return 0; }"
        assert self.run(src, "f", 7, 3) == 1
        assert self.run(src, "f", 2, 3) == 0

    def test_float_condition_truthiness(self):
        src = "int f(float x) { if (x) return 1; return 0; }"
        assert self.run(src, "f", 0.5) == 1
        assert self.run(src, "f", 0.0) == 0

    def test_intrinsic_argument_coercion(self):
        src = "float f(int n) { return sqrt(n); }"
        assert self.run(src, "f", 16) == pytest.approx(4.0)

    def test_unary_plus_is_identity(self):
        src = "int f(int a) { return +a; }"
        assert self.run(src, "f", -7) == -7

    def test_empty_statement(self):
        src = "int f() { ;; return 3; }"
        assert self.run(src, "f") == 3

    def test_multiple_returns_in_loop(self):
        src = """
        int data[4];
        int f(int key) {
            for (int i = 0; i < 4; i++) {
                if (data[i] == key)
                    return i;
            }
            return -1;
        }
        """
        from repro.codegen import compile_source
        from repro.sim import run_program

        program = compile_source(src)
        found = run_program(program, "f", 0,
                            globals_init={"data": [5, 0, 7, 0]})
        assert found.value == 1
        missing = run_program(program, "f", 9,
                              globals_init={"data": [5, 0, 7, 0]})
        assert missing.value == -1

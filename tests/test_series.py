"""Time series, SLO burn-rate alerting and the ops console.

Unit coverage for the SeriesStore/RegistrySampler transforms, the
snapshot timestamp stamp, the alert state machine (pending → firing →
resolved with hysteresis) on synthetic series, EventBus drop-oldest
under sustained sampler load — and end-to-end: a chaos-faulted service
whose availability and degraded-mode alerts fire and resolve, visible
via /v1/alerts, the EventBus and a webhook sink, with the console and
series endpoints rendering from stdlib only.
"""

import json
import threading
import time

import pytest

from repro.chaos import inject
from repro.obs import (EventBus, MetricsRegistry, RegistrySampler,
                       SeriesStore, SLO, SLOConfigError, SLOEngine,
                       default_slos, load_slos, render_console)
from repro.obs.series import ORIGIN_PREFIX, SERIES_SCHEMA
from repro.service import ClientError, ServiceClient, ServiceThread


@pytest.fixture(autouse=True)
def _pristine_injector():
    yield
    inject.reset()


def _src(name, **extra):
    return {"name": name, "source": "int f() { return 1; }",
            "entry": "f", **extra}


# ======================================================================
# SeriesStore
# ======================================================================
class TestSeriesStore:
    def test_ring_respects_retention(self):
        store = SeriesStore(retention=4)
        for i in range(10):
            store.record("s", float(i), ts=float(i))
        points = store.window("s", 100.0, now=10.0)
        assert [v for _, v in points] == [6.0, 7.0, 8.0, 9.0]
        assert store.latest("s") == 9.0

    def test_window_filters_by_time(self):
        store = SeriesStore()
        for i in range(10):
            store.record("s", float(i), ts=float(i))
        assert len(store.window("s", 3.0, now=9.0)) == 3
        assert store.window_avg("s", 3.0, now=9.0) == 8.0
        assert store.window_max("s", 100.0, now=9.0) == 9.0

    def test_window_total_recovers_raw_counts(self):
        store = SeriesStore()
        # 5 events/s sampled every 2s -> 10 events per point.
        for i in range(5):
            store.record("r", 5.0, ts=10.0 + 2 * i, kind="rate")
        # 4 full intervals + the first point estimated at one interval.
        assert store.window_total("r", 100.0, now=18.0) \
            == pytest.approx(50.0)

    def test_to_dict_since_and_prefix(self):
        store = SeriesStore()
        store.record("a.x", 1.0, ts=1.0)
        store.record("a.x", 2.0, ts=2.0)
        store.record("b.y", 3.0, ts=1.0, kind="rate")
        doc = store.to_dict()
        assert doc["schema"] == SERIES_SCHEMA
        assert set(doc["series"]) == {"a.x", "b.y"}
        assert doc["series"]["b.y"]["kind"] == "rate"
        doc = store.to_dict(prefix="a.", since=1.5)
        assert list(doc["series"]) == ["a.x"]
        assert doc["series"]["a.x"]["points"] == [[2.0, 2.0]]
        json.dumps(doc)     # JSON-safe

    def test_merge_snapshot_tags_origin(self):
        a, b = SeriesStore(), SeriesStore()
        a.record("q", 7.0, ts=1.0)
        added = b.merge_snapshot(a.to_dict(), origin="10.0.0.1:8787")
        assert added == 1
        name = f"{ORIGIN_PREFIX}10.0.0.1:8787.q"
        assert b.latest(name) == 7.0


# ======================================================================
# RegistrySampler
# ======================================================================
class TestRegistrySampler:
    def _fixture(self, interval=1.0, bus=None):
        clock = [100.0]
        registry = MetricsRegistry()
        store = SeriesStore()
        sampler = RegistrySampler(registry, store, interval=interval,
                                  bus=bus, clock=lambda: clock[0])
        return clock, registry, store, sampler

    def test_counters_become_rates_after_baseline(self):
        clock, registry, store, sampler = self._fixture()
        registry.counter("jobs").inc(10)
        clock[0] = 101.0
        assert sampler.maybe_sample()
        # First sight of the counter only records a baseline: a fresh
        # sampler must not report cumulative history as a rate spike.
        assert store.latest("jobs") is None
        registry.counter("jobs").inc(6)
        clock[0] = 103.0
        sampler.maybe_sample()
        assert store.latest("jobs") == 3.0          # 6 over 2s
        clock[0] = 104.0
        sampler.maybe_sample()
        assert store.latest("jobs") == 0.0          # idle tick

    def test_interval_gating(self):
        clock, registry, store, sampler = self._fixture(interval=5.0)
        clock[0] = 101.0
        assert sampler.maybe_sample()       # first tick is always due
        clock[0] = 103.0
        assert not sampler.maybe_sample()   # inside the interval
        clock[0] = 106.0
        assert sampler.maybe_sample()
        assert sampler.samples == 2

    def test_gauges_are_levels(self):
        clock, registry, store, sampler = self._fixture()
        registry.gauge("depth").set(4)
        clock[0] = 101.0
        sampler.sample()
        assert store.latest("depth") == 4.0

    def test_histograms_become_windowed_percentiles(self):
        clock, registry, store, sampler = self._fixture()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        hist.observe(0.05)
        clock[0] = 101.0
        sampler.sample()
        for _ in range(20):
            hist.observe(5.0)       # this window is all-slow
        clock[0] = 102.0
        sampler.sample()
        assert store.latest("lat.rate") == 20.0
        # Windowed percentile sees only this tick's observations — the
        # old fast one does not dilute it.
        assert store.latest("lat.p99") > 1.0
        clock[0] = 103.0
        sampler.sample()
        assert store.latest("lat.rate") == 0.0
        # No observations this tick: quantile series gain no point.
        assert store.window("lat.p99", 0.5, now=103.0) == []

    def test_bus_events_become_rates(self):
        bus = EventBus()
        clock, registry, store, sampler = self._fixture(bus=bus)
        bus.publish("job_done", job="j1")
        bus.publish("job_done", job="j2")
        clock[0] = 102.0
        # First tick has no previous timestamp, so dt falls back to
        # the configured interval (1s): 2 events -> 2.0/s.
        sampler.sample()
        assert store.latest("bus.events.job_done") == 2.0
        bus.publish("job_done", job="j3")
        clock[0] = 104.0
        sampler.sample()
        assert store.latest("bus.events.job_done") == 0.5  # 1 over 2s
        sampler.close()

    def test_peer_ingest_and_unreachable_accounting(self):
        clock, registry, store, sampler = self._fixture()
        peer = MetricsRegistry()
        peer.counter("service.jobs.submitted").inc(4)
        sampler.ingest_peer("peer:1", peer.snapshot(), now=101.0)
        peer.counter("service.jobs.submitted").inc(8)
        sampler.ingest_peer("peer:1", peer.snapshot(), now=103.0)
        name = f"{ORIGIN_PREFIX}peer:1.service.jobs.submitted"
        assert store.latest(name) == 4.0            # 8 over 2s
        assert store.latest(f"{ORIGIN_PREFIX}peer:1.up") == 1.0
        sampler.ingest_peer("peer:1", None, now=104.0)
        assert sampler.peers_unreachable == 1
        assert store.latest(f"{ORIGIN_PREFIX}peer:1.up") == 0.0

    def test_snapshot_meta_is_not_sampled(self):
        clock, registry, store, sampler = self._fixture()
        registry.counter("c").inc()
        clock[0] = 101.0
        sampler.sample()
        clock[0] = 102.0
        sampler.sample()
        assert not [n for n in store.names() if n.startswith("_ts")]


# ======================================================================
# EventBus drop-oldest under sustained sampler load
# ======================================================================
class TestSamplerBusBackpressure:
    def test_drop_oldest_keeps_sampler_and_bus_alive(self):
        bus = EventBus()
        registry = MetricsRegistry()
        registry.attach_stream(bus)
        store = SeriesStore()
        clock = [0.0]
        sampler = RegistrySampler(registry, store, interval=1.0,
                                  bus=bus, clock=lambda: clock[0])
        stop = threading.Event()

        def hammer():
            counter = registry.counter("hot")
            while not stop.is_set():
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for tick in range(1, 6):
                time.sleep(0.05)
                clock[0] = float(tick)
                sampler.sample()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        # The sampler's bounded subscription dropped oldest instead of
        # blocking publishers or growing without bound...
        drops = bus.drop_counts().get("series.sampler", 0)
        total = registry.value("hot")
        assert total > 0
        # ...and what it did keep was turned into rate points.
        assert store.latest("hot") is not None
        assert store.latest("bus.dropped") == sampler._sub.dropped
        assert drops == sampler._sub.dropped
        sampler.close()
        # Closed-subscription drops fold into the bus-wide accounting.
        assert bus.drop_counts().get("series.sampler", 0) == drops


# ======================================================================
# SLO configuration
# ======================================================================
class TestSLOConfig:
    def test_defaults_are_wellformed(self):
        slos = default_slos()
        names = [slo.name for slo in slos]
        assert "job-availability" in names
        assert "degraded-mode" in names
        assert len(names) == len(set(names))
        for slo in slos:
            json.dumps(slo.to_dict())

    def test_from_dict_roundtrip_and_validation(self):
        slo = SLO.from_dict({"name": "x", "kind": "level",
                             "series": "s.p99", "limit": 1.0})
        assert slo.series == ("s.p99",)
        assert SLO.from_dict(slo.to_dict()) == slo
        with pytest.raises(SLOConfigError):
            SLO.from_dict({"name": "x", "kind": "nope"})
        with pytest.raises(SLOConfigError):
            SLO.from_dict({"name": "x", "objective": 2.0})
        with pytest.raises(SLOConfigError):
            SLO.from_dict({"name": "x", "typo_key": 1})
        with pytest.raises(SLOConfigError):
            SLO.from_dict({"kind": "ratio", "bad": "b"})

    def test_load_toml_overlays_defaults(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(
            '[[slo]]\n'
            'name = "job-availability"\n'
            'objective = 0.999\n'
            '\n'
            '[[slo]]\n'
            'name = "queue-latency-p99"\n'
            'disabled = true\n'
            '\n'
            '[[slo]]\n'
            'name = "custom-burn"\n'
            'kind = "zero"\n'
            'series = ["chaos.worker.kill"]\n')
        slos = {slo.name: slo for slo in load_slos(path)}
        assert slos["job-availability"].objective == 0.999
        # Non-overridden fields keep their default values.
        assert slos["job-availability"].bad \
            == ("service.jobs.done.failed", "service.jobs.rejected")
        assert "queue-latency-p99" not in slos
        assert slos["custom-burn"].series == ("chaos.worker.kill",)

    def test_load_json_and_bad_files(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(
            {"slo": [{"name": "j", "kind": "zero", "series": ["x"]}]}))
        assert "j" in {slo.name for slo in load_slos(path)}
        bad = tmp_path / "bad.toml"
        bad.write_text("[[slo]\nname=")
        with pytest.raises(SLOConfigError):
            load_slos(bad)
        with pytest.raises(SLOConfigError):
            load_slos(tmp_path / "missing.json")


# ======================================================================
# Alert state machine on synthetic series
# ======================================================================
class TestAlertStateMachine:
    def _ratio_engine(self, store, pending_for=0.0, resolve_after=5.0):
        return SLOEngine(store, slos=[SLO(
            name="avail", kind="ratio", bad=("bad",), good=("good",),
            objective=0.99, fast_window=10.0, slow_window=30.0,
            fast_burn=2.0, slow_burn=1.0, pending_for=pending_for,
            resolve_after=resolve_after)], clock=lambda: 0.0)

    @staticmethod
    def _feed(store, start, seconds, bad, good):
        for i in range(int(seconds)):
            store.record("bad", bad, ts=start + i, kind="rate")
            store.record("good", good, ts=start + i, kind="rate")
        return start + seconds

    def test_burn_window_math(self):
        store = SeriesStore(retention=256)
        engine = self._ratio_engine(store)
        self._feed(store, 0.0, 40, bad=1.0, good=9.0)   # 10% errors
        engine.evaluate(now=40.0)
        alert = engine.alerts()[0]
        # error rate 0.10 against a 0.01 budget -> burn 10x both
        # windows.
        assert alert["burn_fast"] == pytest.approx(10.0, rel=0.05)
        assert alert["burn_slow"] == pytest.approx(10.0, rel=0.05)
        assert alert["state"] == "firing"
        assert alert["budget_remaining"] == 0.0

    def test_no_data_means_no_burn(self):
        store = SeriesStore()
        engine = self._ratio_engine(store)
        assert engine.evaluate(now=10.0) == []
        assert engine.alerts()[0]["state"] == "ok"

    def test_fast_blip_alone_does_not_fire(self):
        store = SeriesStore(retention=256)
        engine = self._ratio_engine(store)
        # Long healthy history, then a brief 12% error blip: the fast
        # window burns (~2.4x) but the slow window absorbs it (~0.8x).
        now = self._feed(store, 0.0, 28, bad=0.0, good=10.0)
        self._feed(store, now, 2, bad=1.2, good=8.8)
        engine.evaluate(now=30.0)
        alert = engine.alerts()[0]
        assert alert["burn_fast"] >= 2.0
        assert alert["burn_slow"] < 1.0
        assert alert["state"] == "ok"

    def test_pending_firing_resolved_lifecycle(self):
        store = SeriesStore(retention=1024)
        engine = self._ratio_engine(store, pending_for=5.0,
                                    resolve_after=10.0)
        # Sustained 50% errors: pending first, firing after 5s.
        now = self._feed(store, 0.0, 35, bad=5.0, good=5.0)
        trans = engine.evaluate(now=now)
        assert [t["state"] for t in trans] == ["pending"]
        trans = engine.evaluate(now=now + 2.0)
        assert trans == []                      # still pending
        now = self._feed(store, now, 6, bad=5.0, good=5.0)
        trans = engine.evaluate(now=now)
        assert [t["state"] for t in trans] == ["firing"]
        # Recovery: healthy traffic long enough to clear both windows.
        now = self._feed(store, now, 35, bad=0.0, good=10.0)
        trans = engine.evaluate(now=now)
        assert trans == []                      # hysteresis holds it
        now = self._feed(store, now, 11, bad=0.0, good=10.0)
        trans = engine.evaluate(now=now)
        assert [t["state"] for t in trans] == ["resolved"]
        # One visible 'resolved' tick, then quietly back to ok.
        trans = engine.evaluate(now=now + 1.0)
        assert [t["state"] for t in trans] == ["ok"]
        history = engine.alerts()[0]["history"]
        assert [h["state"] for h in history] \
            == ["pending", "firing", "resolved", "ok"]

    def test_pending_cancels_if_breach_clears(self):
        store = SeriesStore(retention=1024)
        engine = self._ratio_engine(store, pending_for=10.0)
        now = self._feed(store, 0.0, 35, bad=5.0, good=5.0)
        engine.evaluate(now=now)
        assert engine.alerts()[0]["state"] == "pending"
        now = self._feed(store, now, 40, bad=0.0, good=10.0)
        engine.evaluate(now=now)
        assert engine.alerts()[0]["state"] == "ok"
        # A cancelled pending never published firing/resolved.
        states = [h["state"] for h in engine.alerts()[0]["history"]]
        assert "firing" not in states

    def test_flapping_does_not_resolve_early(self):
        store = SeriesStore(retention=1024)
        engine = self._ratio_engine(store, resolve_after=20.0)
        now = self._feed(store, 0.0, 35, bad=5.0, good=5.0)
        engine.evaluate(now=now)
        assert engine.alerts()[0]["state"] == "firing"
        # Clears briefly, then burns again: the re-breach must reset
        # the resolve timer rather than let it carry over.
        now = self._feed(store, now, 12, bad=0.0, good=10.0)
        engine.evaluate(now=now)            # first clear at ~t=47
        now = self._feed(store, now, 12, bad=5.0, good=5.0)
        engine.evaluate(now=now)            # re-breached
        assert engine.alerts()[0]["state"] == "firing"
        now = self._feed(store, now, 12, bad=0.0, good=10.0)
        engine.evaluate(now=now)            # second clear at ~t=71
        engine.evaluate(now=now + 18)
        # 18s since the SECOND clear (< 20s resolve_after) but 42s
        # since the first: a carried-over timer would have resolved.
        assert engine.alerts()[0]["state"] == "firing"
        engine.evaluate(now=now + 25)
        assert engine.alerts()[0]["state"] == "resolved"
        states = [h["state"] for h in engine.alerts()[0]["history"]]
        assert states.count("resolved") == 1

    def test_level_kind_fires_on_fraction_above_limit(self):
        store = SeriesStore()
        engine = SLOEngine(store, slos=[SLO(
            name="lat", kind="level", series=("p99",), limit=2.0,
            objective=0.9, fast_window=10.0, slow_window=10.0,
            fast_burn=2.0, slow_burn=2.0)], clock=lambda: 0.0)
        for i in range(10):
            store.record("p99", 5.0, ts=float(i))
        engine.evaluate(now=9.5)
        # All points over limit: burn = 1.0 / 0.1 budget = 10x.
        alert = engine.alerts()[0]
        assert alert["state"] == "firing"
        assert alert["burn_fast"] == pytest.approx(10.0)

    def test_zero_kind_fires_on_any_positive_point(self):
        store = SeriesStore()
        engine = SLOEngine(store, slos=[SLO(
            name="sound", kind="zero", series=("violations",),
            fast_window=10.0, slow_window=10.0, resolve_after=5.0)],
            clock=lambda: 0.0)
        store.record("violations", 0.0, ts=1.0)
        engine.evaluate(now=2.0)
        assert engine.alerts()[0]["state"] == "ok"
        store.record("violations", 1.0, ts=3.0)
        trans = engine.evaluate(now=4.0)
        assert [t["state"] for t in trans] == ["firing"]

    def test_wildcard_expands_per_tenant(self):
        store = SeriesStore()
        engine = SLOEngine(store, slos=[SLO(
            name="throttle", kind="ratio",
            bad=("tenant.*.throttled_429",),
            good=("tenant.*.submitted",), objective=0.9,
            fast_window=20.0, slow_window=20.0, fast_burn=1.0,
            slow_burn=1.0)], clock=lambda: 0.0)
        for i in range(10):
            store.record("tenant.acme.throttled_429", 5.0,
                         ts=float(i), kind="rate")
            store.record("tenant.acme.submitted", 5.0, ts=float(i),
                         kind="rate")
            store.record("tenant.beta.throttled_429", 0.0,
                         ts=float(i), kind="rate")
            store.record("tenant.beta.submitted", 10.0, ts=float(i),
                         kind="rate")
        engine.evaluate(now=9.5)
        by_key = {a["key"]: a for a in engine.alerts()}
        assert by_key["throttle[acme]"]["state"] == "firing"
        assert by_key["throttle[beta]"]["state"] == "ok"

    def test_transitions_publish_bus_events_and_webhook(self):
        store = SeriesStore()
        bus = EventBus()
        registry = MetricsRegistry()
        hooks = []
        engine = SLOEngine(store, slos=[SLO(
            name="sound", kind="zero", series=("violations",),
            fast_window=10.0, slow_window=10.0, resolve_after=1.0)],
            bus=bus, registry=registry, webhook=hooks.append,
            clock=lambda: 0.0)
        sub = bus.subscribe(name="test")
        store.record("violations", 2.0, ts=1.0)
        engine.evaluate(now=2.0)
        events = [e for e in sub.pop_all()
                  if e["type"].startswith("alert_")]
        assert events and events[0]["type"] == "alert_firing"
        assert events[0]["alert"] == "sound"
        assert hooks and hooks[0]["event"] == "alert_firing"
        assert registry.value("slo.transitions.firing") == 1
        assert registry.value("slo.webhook.delivered") == 1
        # Violation ages out of the window -> resolved also lands.
        engine.evaluate(now=20.0)
        engine.evaluate(now=25.0)
        assert any(e["type"] == "alert_resolved"
                   for e in sub.pop_all())
        assert hooks[-1]["event"] == "alert_resolved"

    def test_http_webhook_sink(self):
        import http.server

        received = []

        class Sink(http.server.BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers["Content-Length"])
                received.append(json.loads(self.rfile.read(length)))
                self.send_response(200)
                self.end_headers()

            def log_message(self, *args):
                pass

        server = http.server.HTTPServer(("127.0.0.1", 0), Sink)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{server.server_port}/hook"
            store = SeriesStore()
            registry = MetricsRegistry()
            engine = SLOEngine(store, slos=[SLO(
                name="sound", kind="zero", series=("v",),
                fast_window=10.0, slow_window=10.0)],
                registry=registry, webhook=url, clock=lambda: 0.0)
            store.record("v", 1.0, ts=1.0)
            engine.evaluate(now=2.0)
            deadline = time.monotonic() + 5.0
            while not received and time.monotonic() < deadline:
                time.sleep(0.02)
            assert received and received[0]["event"] == "alert_firing"
            assert received[0]["name"] == "sound"
        finally:
            server.shutdown()
            thread.join()


# ======================================================================
# Service wiring end to end
# ======================================================================
class TestServiceSeries:
    def test_series_endpoint_and_console(self, tmp_path):
        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache",
                           series_interval=0.1) as handle:
            client = ServiceClient(port=handle.port)
            client.wait(client.submit(_src("a"))["id"], timeout=60)
            deadline = time.monotonic() + 10
            doc = {}
            while time.monotonic() < deadline:
                doc = client.series()
                if "service.queue_depth" in doc["series"]:
                    break
                time.sleep(0.1)
            assert doc["schema"] == SERIES_SCHEMA
            assert "service.queue_depth" in doc["series"]
            assert doc["origin"].endswith(str(handle.port))
            # prefix + since filtering
            filtered = client.series(prefix="service.queue_depth")
            assert all(n.startswith("service.queue_depth")
                       for n in filtered["series"])
            future = client.series(since=time.time() + 3600)
            assert all(not s["points"]
                       for s in future["series"].values())
            # alerts endpoint exposes the default objectives
            alerts = client.alerts()
            assert {a["name"] for a in alerts["alerts"]} \
                >= {"job-availability", "degraded-mode"}
            # the console renders with stdlib only
            import http.client

            connection = http.client.HTTPConnection("127.0.0.1",
                                                    handle.port)
            connection.request("GET", "/dashboard")
            response = connection.getresponse()
            body = response.read()
            assert response.status == 200
            assert response.getheader("Content-Type") \
                .startswith("text/html")
            assert body.startswith(b"<!DOCTYPE html>")
            connection.close()

    def test_disabled_series_is_absent_and_zero_cost(self, tmp_path):
        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache",
                           series=False) as handle:
            assert handle.service.sampler is None
            assert handle.service.slo is None
            assert handle.service.series_store is None
            client = ServiceClient(port=handle.port)
            with pytest.raises(ClientError):
                client.series()
            with pytest.raises(ClientError):
                client.alerts()

    def test_chaos_fires_degraded_and_availability_alerts(
            self, tmp_path):
        """The acceptance scenario: journal ENOSPC trips degraded-mode
        and availability SLOs, both fire deterministically, then
        resolve once the journal heals — visible via /v1/alerts, the
        EventBus (SSE) and the webhook sink."""
        hooks = []
        slos = [
            SLO(name="degraded-mode", kind="zero",
                series=("service.degraded",
                        "service.degraded.entered"),
                fast_window=3.0, slow_window=3.0, resolve_after=1.0),
            SLO(name="job-availability", kind="ratio",
                bad=("service.jobs.done.failed",
                     "service.jobs.rejected"),
                good=("service.jobs.done.ok",
                      "service.jobs.done.partial",
                      "service.jobs.submitted"),
                objective=0.99, fast_window=3.0, slow_window=3.0,
                fast_burn=1.0, slow_burn=1.0, resolve_after=1.0),
        ]
        with ServiceThread(workers=1, executor="thread",
                           journal_dir=tmp_path / "journal",
                           cache_dir=tmp_path / "cache",
                           chaos="seed=1,journal.enospc=2",
                           series_interval=0.1, slo=slos,
                           alert_webhook=hooks.append) as handle:
            client = ServiceClient(port=handle.port)
            sub = handle.service.bus.subscribe(name="test-alerts")
            # Trip it: the failed journal frame rejects the submit and
            # flips degraded mode.
            ticket = client.submit_retry(_src("a"),
                                         _random=lambda a, b: 0.3)
            client.wait(ticket["id"], timeout=60)

            def states():
                return {a["name"]: a["state"]
                        for a in client.alerts()["alerts"]}

            deadline = time.monotonic() + 15
            fired = set()
            while time.monotonic() < deadline:
                fired |= {name for name, state in states().items()
                          if state == "firing"}
                if {"degraded-mode", "job-availability"} <= fired:
                    break
                time.sleep(0.05)
            assert {"degraded-mode", "job-availability"} <= fired
            # ... and both resolve once the violation ages out.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                now_states = states()
                if all(now_states[name] in ("resolved", "ok")
                       for name in ("degraded-mode",
                                    "job-availability")):
                    break
                time.sleep(0.1)
            assert all(states()[name] in ("resolved", "ok")
                       for name in ("degraded-mode",
                                    "job-availability"))
            # Same story on the bus and the webhook.
            kinds = {(e.get("type"), e.get("slo"))
                     for e in sub.pop_all()
                     if str(e.get("type", "")).startswith("alert_")}
            assert ("alert_firing", "degraded-mode") in kinds
            assert ("alert_resolved", "degraded-mode") in kinds
            hooked = {(h["event"], h["name"]) for h in hooks}
            assert ("alert_firing", "job-availability") in hooked
            assert ("alert_resolved", "job-availability") in hooked
            sub.close()

    def test_peer_series_federation(self, tmp_path):
        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache-a",
                           series_interval=0.1) as owner:
            with ServiceThread(workers=1, executor="thread",
                               cache_dir=tmp_path / "cache-b",
                               peers=[f"127.0.0.1:{owner.port}"],
                               share=False,
                               series_interval=0.1) as stealer:
                client = ServiceClient(port=stealer.port)
                prefix = f"{ORIGIN_PREFIX}127.0.0.1:{owner.port}."
                deadline = time.monotonic() + 15
                doc = {}
                while time.monotonic() < deadline:
                    doc = client.series(prefix=prefix)
                    if any(n.endswith(".up") and s["points"]
                           and s["points"][-1][1] == 1.0
                           for n, s in doc["series"].items()):
                        break
                    time.sleep(0.1)
                up = f"{prefix}up"
                assert doc["series"][up]["points"][-1][1] == 1.0
        # Owner gone: the sampler counts the unreachable peer instead
        # of stalling housekeeping.
        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache-c",
                           peers=["127.0.0.1:9"],    # nothing there
                           share=False,
                           series_interval=0.1) as lonely:
            client = ServiceClient(port=lonely.port)
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if client.series()["peers_unreachable"] > 0:
                    break
                time.sleep(0.1)
            assert client.series()["peers_unreachable"] > 0
            assert client.healthz()["status"] == "ok"

    def test_follow_surfaces_alert_events(self, capsys, tmp_path):
        from repro.cli import _follow_job

        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache",
                           series_interval=0.2) as handle:
            client = ServiceClient(port=handle.port)
            ticket = client.submit(_src("a"))
            # Inject a transition while the job runs; the job-filtered
            # stream must let it through.
            handle.service.bus.publish(
                "alert_firing", alert="degraded-mode",
                slo="degraded-mode", state="firing",
                description="journal sick", burn_fast=9.9,
                burn_slow=9.9)
            _follow_job(client, "a", ticket["id"])
            err = capsys.readouterr().err
            assert "ALERT FIRING: degraded-mode" in err
            assert "(burn 9.9x fast / 9.9x slow)" in err
            assert "a: ok" in err


# ======================================================================
# CLI rendering
# ======================================================================
class TestSeriesCLI:
    def test_obs_series_renders_saved_dump(self, tmp_path, capsys):
        from repro.cli import main

        store = SeriesStore()
        for i in range(8):
            store.record("service.queue_depth", float(i), ts=float(i))
        path = tmp_path / "series.json"
        path.write_text(json.dumps(store.to_dict()))
        assert main(["obs", "series", str(path)]) == 0
        out = capsys.readouterr().out
        assert "service.queue_depth" in out
        assert "▁" in out and "█" in out      # sparkline extremes

    def test_obs_series_and_alerts_against_service(self, tmp_path,
                                                   capsys):
        from repro.cli import main

        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache",
                           series_interval=0.1) as handle:
            client = ServiceClient(port=handle.port)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.series()["series"]:
                    break
                time.sleep(0.1)
            port = str(handle.port)
            assert main(["obs", "series", "--port", port]) == 0
            assert main(["obs", "alerts", "--port", port]) == 0
            out = capsys.readouterr().out
            assert "origin 127.0.0.1:" + port in out
            assert "job-availability" in out
            assert "firing /" in out
            assert main(["obs", "alerts", "--port", port,
                         "--json"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["schema"] == 1

"""Analysis service: wire model, queue, admission, deadlines, drain.

Scheduling behaviour is tested deterministically by injecting a gated
fake runner (the scheduler's ``runner`` hook) so a worker can be held
mid-job while the test probes the HTTP surface around it; the
end-to-end class runs the real engine payload and checks the served
bounds against serial ``Analysis.estimate``.
"""

import asyncio
import threading
import time

import pytest

from repro.engine.jobs import JobResult
from repro.obs import MetricsRegistry
from repro.programs import get_benchmark
from repro.service import (BadRequest, ClientError, JobFailed, JobQueue,
                           JobSpec, QueueClosed, QueueSaturated,
                           ServiceClient, ServiceSaturated,
                           ServiceThread, ServiceUnavailable)


class GatedRunner:
    """A fake engine runner the test can hold and release."""

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.payloads = []
        self._lock = threading.Lock()

    def __call__(self, payload):
        with self._lock:
            self.payloads.append(payload)
        self.started.set()
        if not self.gate.wait(timeout=30):
            raise TimeoutError("test never released the gate")
        return JobResult(payload[0].name, "ok")

    @property
    def names(self):
        with self._lock:
            return [payload[0].name for payload in self.payloads]


def _thread_service(**kwargs):
    kwargs.setdefault("executor", "thread")
    return ServiceThread(**kwargs)


def _src(name, **extra):
    """A named source-job spec (fake runners never compile it, and the
    spec's name travels into the engine payload — unlike benchmark
    jobs, which take the benchmark's registered name)."""
    return {"name": name, "source": "int f() { return 1; }",
            "entry": "f", **extra}


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_dict({
            "source": "int f() { return 1; }", "entry": "f",
            "machine": "dsp3210", "backend": "exact",
            "auto_bounds": True, "bounds": [[None, 3, 0, 8]],
            "constraints": [["x1 = 1", None]], "priority": 4,
            "deadline_seconds": 9.5, "set_timeout": 2.0,
            "max_iterations": 1000})
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert spec.name == "f@source"

    def test_lowers_to_engine_job(self):
        spec = JobSpec.from_dict({"benchmark": "check_data"})
        job = spec.to_analysis_job()
        from repro.engine import AnalysisJob
        assert (job.fingerprint()
                == AnalysisJob.from_benchmark("check_data").fingerprint())

    @pytest.mark.parametrize("body", [
        "not a dict",
        {},                                        # no target
        {"benchmark": "a", "source": "b", "entry": "f"},
        {"source": "int f(){}"},                   # no entry
        {"benchmark": "check_data", "machine": "vax"},
        {"benchmark": "check_data", "backend": "cplex"},
        {"benchmark": "check_data", "deadline_seconds": -1},
        {"benchmark": "check_data", "set_timeout": "soon"},
        {"benchmark": "check_data", "bounds": [[1]]},
        {"benchmark": "check_data", "frobnicate": True},
    ])
    def test_rejects_bad_specs(self, body):
        with pytest.raises(BadRequest):
            JobSpec.from_dict(body)


class _Record:
    def __init__(self, name, priority=0):
        self.spec = JobSpec(name=name, benchmark=name, priority=priority)


class TestJobQueue:
    def test_priority_then_fifo(self):
        async def scenario():
            queue = JobQueue()
            for name, priority in (("a", 0), ("b", 5),
                                   ("c", 0), ("d", 5)):
                queue.push(_Record(name, priority))
            return [(await queue.pop()).spec.name for _ in range(4)]

        assert asyncio.run(scenario()) == ["b", "d", "a", "c"]

    def test_priority_ties_are_fifo_stable(self):
        """Submission-order fairness: equal-priority records must pop
        in exactly the order they were pushed, at any scale."""
        async def scenario():
            queue = JobQueue()
            for n in range(50):
                queue.push(_Record(f"job{n:02d}", priority=3))
            return [(await queue.pop()).spec.name for _ in range(50)]

        assert asyncio.run(scenario()) \
            == [f"job{n:02d}" for n in range(50)]

    def test_repush_keeps_original_fifo_position(self):
        """A record re-queued later (expired peer lease, journal
        recovery) keeps its first-admission slot instead of going to
        the back of its priority class."""
        async def scenario():
            queue = JobQueue()
            first, second, third = (_Record("first"), _Record("second"),
                                    _Record("third"))
            queue.push(first)
            queue.push(second)
            popped = await queue.pop()          # "first" gets leased...
            assert popped is first
            queue.push(third)
            queue.push(first)                   # ...and expires back
            return [(await queue.pop()).spec.name for _ in range(3)]

        assert asyncio.run(scenario()) == ["first", "second", "third"]

    def test_saturation_and_close(self):
        async def scenario():
            queue = JobQueue(maxsize=1)
            queue.push(_Record("a"))
            with pytest.raises(QueueSaturated):
                queue.push(_Record("b"))
            queue.close()
            with pytest.raises(QueueClosed):
                queue.push(_Record("c"))
            assert (await queue.pop()).spec.name == "a"
            assert await queue.pop() is None      # closed and empty

        asyncio.run(scenario())


class TestAdmissionControl:
    def test_saturated_queue_gets_429_with_retry_after(self):
        runner = GatedRunner()
        with _thread_service(workers=1, queue_depth=1,
                             runner=runner) as handle:
            client = ServiceClient(port=handle.port)
            first = client.submit(_src("inflight"))
            assert runner.started.wait(timeout=10)
            client.submit(_src("queued"))
            with pytest.raises(ServiceSaturated) as excinfo:
                client.submit(_src("rejected"))
            assert excinfo.value.retry_after >= 1

            snapshot = client.metricz()
            assert snapshot["service.jobs.rejected"]["value"] == 1
            assert snapshot["service.jobs.submitted"]["value"] == 2

            runner.gate.set()
            record = client.wait(first["id"], timeout=30)
            assert record["state"] == "done"
        assert "rejected" not in runner.names

    def test_priority_orders_dispatch(self):
        runner = GatedRunner()
        with _thread_service(workers=1, queue_depth=8,
                             runner=runner) as handle:
            client = ServiceClient(port=handle.port)
            client.submit(_src("blocker"))
            assert runner.started.wait(timeout=10)
            client.submit(_src("low", priority=0))
            client.submit(_src("high", priority=5))
            runner.gate.set()
        assert runner.names == ["blocker", "high", "low"]

    def test_bad_submissions_are_400(self):
        with _thread_service(workers=1) as handle:
            client = ServiceClient(port=handle.port)
            with pytest.raises(ClientError, match="HTTP 400"):
                client.submit({"benchmark": "check_data",
                               "machine": "vax"})
            with pytest.raises(ClientError, match="HTTP 404"):
                client.job("j999999")


class TestDeadlines:
    def test_deadline_becomes_solver_budget(self):
        runner = GatedRunner()
        runner.gate.set()                         # run-through
        with _thread_service(workers=1, runner=runner) as handle:
            client = ServiceClient(port=handle.port)
            ticket = client.submit({"benchmark": "check_data",
                                    "deadline_seconds": 60.0})
            client.wait(ticket["id"], timeout=30)
            ticket = client.submit({"benchmark": "check_data",
                                    "deadline_seconds": 60.0,
                                    "set_timeout": 2.0})
            client.wait(ticket["id"], timeout=30)
        # Deadline remainder propagates as the per-set solver timeout…
        _job, _cache, set_timeout, _iters, _trace = runner.payloads[0]
        assert set_timeout is not None and 50.0 < set_timeout <= 60.0
        # …and min-combines with an explicit set_timeout.
        _job, _cache, set_timeout, _iters, _trace = runner.payloads[1]
        assert set_timeout == 2.0

    def test_expired_deadline_fails_without_running(self):
        runner = GatedRunner()
        with _thread_service(workers=1, runner=runner) as handle:
            client = ServiceClient(port=handle.port)
            blocker = client.submit(_src("blocker"))
            assert runner.started.wait(timeout=10)
            doomed = client.submit(_src("doomed", deadline_seconds=0.05))
            time.sleep(0.2)                       # let the deadline pass
            runner.gate.set()
            client.wait(blocker["id"], timeout=30)
            with pytest.raises(JobFailed, match="deadline exceeded"):
                client.wait(doomed["id"], timeout=30)
            snapshot = client.metricz()
            assert (snapshot["service.jobs.deadline_expired"]["value"]
                    == 1)
        assert "doomed" not in runner.names       # never reached a worker


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_new(self, tmp_path):
        runner = GatedRunner()
        metrics_path = tmp_path / "metrics.json"
        handle = _thread_service(workers=1, runner=runner,
                                 metrics_path=metrics_path).start()
        client = ServiceClient(port=handle.port)
        inflight = client.submit(_src("inflight"))
        assert runner.started.wait(timeout=10)
        queued = client.submit(_src("queued"))

        drainer = threading.Thread(target=handle.drain)
        drainer.start()
        time.sleep(0.2)
        assert client.healthz()["status"] == "draining"
        with pytest.raises(ServiceUnavailable):
            client.submit(_src("late"))

        runner.gate.set()
        drainer.join(timeout=30)
        assert not drainer.is_alive()

        # Both admitted jobs finished; the metrics snapshot was flushed
        # and is a loadable registry.
        records = handle.service.records
        assert {records[t["id"]].state
                for t in (inflight, queued)} == {"done"}
        flushed = MetricsRegistry.load(metrics_path)
        assert flushed.value("service.jobs.done.ok") == 2
        with pytest.raises(ServiceUnavailable):
            client.healthz()                      # listener is gone


class TestEndToEnd:
    def test_bounds_match_serial_and_cache_reuses(self, tmp_path):
        serial = get_benchmark("check_data").make_analysis().estimate()
        with _thread_service(workers=2, cache_dir=tmp_path) as handle:
            client = ServiceClient(port=handle.port)
            cold = client.wait(
                client.submit({"benchmark": "check_data"})["id"],
                timeout=120)
            warm = client.wait(
                client.submit({"benchmark": "check_data"})["id"],
                timeout=120)
            explanation = client.explain(cold["id"], direction="worst")
            with pytest.raises(ClientError, match="HTTP 400"):
                client.explain(cold["id"], direction="sideways")
            snapshot = client.metricz()

        assert (cold["best"], cold["worst"]) == serial.interval
        assert (warm["best"], warm["worst"]) == serial.interval
        assert not cold["cache_hit"] and warm["cache_hit"]
        assert (cold["report"]["best"],
                cold["report"]["worst"]) == serial.interval

        assert explanation["bound"] == serial.worst
        assert explanation["consistent"] is True

        # /metricz is a mergeable obs snapshot carrying both the
        # service.* and folded engine.* families.
        registry = MetricsRegistry.from_snapshot(snapshot)
        assert registry.value("service.jobs.submitted") == 2
        assert registry.value("engine.cache.hits.job") == 1
        merged = MetricsRegistry.from_snapshot(snapshot)
        merged.merge(registry)
        assert merged.value("service.jobs.submitted") == 4
        queue_hist = registry.histogram("service.queue_seconds")
        assert queue_hist.count == 2

    def test_failed_job_surfaces_as_job_failed(self):
        with _thread_service(workers=1) as handle:
            client = ServiceClient(port=handle.port)
            ticket = client.submit({"benchmark": "no_such_routine"})
            with pytest.raises(JobFailed):
                client.wait(ticket["id"], timeout=30)
            with pytest.raises(ClientError, match="HTTP 409"):
                client.explain(ticket["id"])

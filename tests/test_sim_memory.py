"""Unit tests for the simulator's memory model and interpreter edge
cases not covered by the end-to-end suites."""

import pytest

from repro.codegen import compile_source
from repro.errors import SimulationError
from repro.sim import Interpreter, Memory, run_program

SRC = """
const int K = 3;
int scalar = 7;
float weights[3] = {0.5, 1.5, 2.5};
int grid[2][2] = {1, 2, 3, 4};

int f() { return scalar; }
"""


def memory():
    return Memory(compile_source(SRC))


class TestMemory:
    def test_global_initialization(self):
        mem = memory()
        assert mem.get_global("scalar") == 7
        assert mem.get_global("weights") == [0.5, 1.5, 2.5]
        assert mem.get_global("grid") == [1, 2, 3, 4]
        # const globals live in memory too (they are loaded like any
        # other global).
        assert mem.get_global("K") == 3

    def test_float_arrays_cast(self):
        mem = memory()
        mem.set_global("weights", [1, 2, 3])
        assert mem.get_global("weights") == [1.0, 2.0, 3.0]
        assert all(isinstance(v, float)
                   for v in mem.get_global("weights"))

    def test_int_globals_cast(self):
        mem = memory()
        mem.set_global("scalar", 3.9)
        assert mem.get_global("scalar") == 3

    def test_unknown_global(self):
        mem = memory()
        with pytest.raises(SimulationError):
            mem.set_global("ghost", 1)
        with pytest.raises(SimulationError):
            mem.get_global("ghost")

    def test_oversized_array_write(self):
        mem = memory()
        with pytest.raises(SimulationError):
            mem.set_global("weights", [1.0] * 4)

    def test_partial_array_write(self):
        mem = memory()
        mem.set_global("weights", [9.0])
        assert mem.get_global("weights") == [9.0, 1.5, 2.5]

    def test_load_bounds(self):
        mem = memory()
        with pytest.raises(SimulationError):
            mem.load(-1)
        with pytest.raises(SimulationError):
            mem.load(10_000_000)

    def test_store_grows_stack_region(self):
        mem = memory()
        mem.store(mem.stack_base + 5, 42)
        assert mem.load(mem.stack_base + 5) == 42

    def test_store_beyond_capacity(self):
        program = compile_source(SRC)
        mem = Memory(program, capacity=program.data_words + 4)
        with pytest.raises(SimulationError):
            mem.store(program.data_words + 100, 1)

    def test_reserve_overflow(self):
        program = compile_source(SRC)
        mem = Memory(program, capacity=program.data_words + 4)
        with pytest.raises(SimulationError):
            mem.reserve(1000)


class TestInterpreterEdges:
    def test_unknown_entry(self):
        interp = Interpreter(compile_source(SRC))
        with pytest.raises(SimulationError):
            interp.run("ghost")

    def test_wrong_arity(self):
        interp = Interpreter(compile_source("int f(int a) { return a; }"))
        with pytest.raises(SimulationError):
            interp.run("f")
        with pytest.raises(SimulationError):
            interp.run("f", 1, 2)

    def test_float_args_coerced_to_int_params(self):
        result = run_program(
            compile_source("int f(int a) { return a + 1; }"), "f", 3.7)
        assert result.value == 4

    def test_int_args_coerced_to_float_params(self):
        result = run_program(
            compile_source("float f(float a) { return a / 2.0; }"),
            "f", 7)
        assert result.value == pytest.approx(3.5)

    def test_void_entry_returns_none(self):
        src = "int g; void f() { g = 1; }"
        assert run_program(compile_source(src), "f").value is None

    def test_deep_call_chain_frames(self):
        # 12 nested calls, each with a local array: frames must not
        # alias.
        layers = "\n".join(
            f"int f{i}(int x) {{ int buf[4]; buf[0] = x; "
            f"return f{i+1}(buf[0] + 1); }}"
            for i in range(12))
        src = layers + "\nint f12(int x) { return x; }"
        result = run_program(compile_source(src), "f0", 0)
        assert result.value == 12

    def test_negative_array_index_faults(self):
        src = "int a[4]; int f(int i) { return a[i]; }"
        program = compile_source(src)
        # a is at address 0, so a[-1] is address -1.
        with pytest.raises(SimulationError):
            run_program(program, "f", -1)

    def test_interpreter_isolated_between_instances(self):
        program = compile_source("int g; int f() { g = g + 1; return g; }")
        first = Interpreter(program)
        second = Interpreter(program)
        assert first.run("f").value == 1
        assert first.run("f").value == 2      # same instance accumulates
        assert second.run("f").value == 1     # fresh memory

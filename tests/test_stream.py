"""Telemetry streaming: event bus, SSE framing and endpoints, live
dashboard, keep-alive, metrics federation and trace diffing.

Backpressure is the load-bearing property: a slow (or dead) subscriber
may lose events — counted, never silently — but must not be able to
stall a publisher, because publishers sit inside the solver hot path.
"""

import io
import json
import threading
import time

import pytest

from repro.cli import main
from repro.errors import SchemaMismatchError
from repro.obs import (EventBus, LiveDashboard, MetricsRegistry, Tracer,
                       aggregate_trace, diff_traces, load_trace_events,
                       parse_sse_stream, render_trace_diff, sse_comment,
                       sse_format, span_key)
from repro.service import ServiceClient, ServiceThread


def _thread_service(**kwargs):
    kwargs.setdefault("executor", "thread")
    kwargs.setdefault("workers", 2)
    return ServiceThread(**kwargs)


# ----------------------------------------------------------------------
# EventBus core
# ----------------------------------------------------------------------
class TestEventBus:
    def test_publish_stamps_seq_ts_type(self):
        bus = EventBus()
        first = bus.publish("job_start", name="a")
        second = bus.publish("set_done", set=3)
        assert first["type"] == "job_start" and first["name"] == "a"
        assert second["seq"] == first["seq"] + 1
        assert first["ts"] <= second["ts"]

    def test_subscriber_sees_events_in_order(self):
        bus = EventBus()
        with bus.subscribe() as sub:
            for n in range(5):
                bus.publish("counter", n=n)
            got = sub.pop_all()
        assert [event["n"] for event in got] == list(range(5))

    def test_slow_subscriber_drops_oldest_and_counts(self):
        bus = EventBus()
        sub = bus.subscribe(maxlen=4)
        for n in range(10):
            bus.publish("counter", n=n)
        got = sub.pop_all()
        # The newest 4 survive; the 6 older ones are counted dropped.
        assert [event["n"] for event in got] == [6, 7, 8, 9]
        assert sub.dropped == 6
        assert bus.dropped == 6
        sub.close()

    def test_publisher_never_blocks_on_dead_subscriber(self):
        bus = EventBus()
        bus.subscribe(maxlen=2)      # never drained
        clock = time.perf_counter()
        for n in range(10_000):
            bus.publish("counter", n=n)
        elapsed = time.perf_counter() - clock
        # 10k publishes into a saturated queue stay well under a
        # second: drop-oldest is O(1) and lock-bounded.
        assert elapsed < 1.0
        assert bus.dropped == 10_000 - 2

    def test_closed_subscription_stops_receiving(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.publish("a")
        sub.close()
        bus.publish("b")
        assert sub.closed
        assert bus.subscribers == 0

    def test_ring_replay_since(self):
        bus = EventBus(ring_size=8)
        for n in range(12):
            bus.publish("counter", n=n)
        replayed = bus.replay(0)
        assert len(replayed) == 8          # ring capacity
        assert replayed[-1]["n"] == 11
        newest = bus.replay(bus.seq - 2)
        assert [event["n"] for event in newest] == [10, 11]

    def test_wakeup_callback_fires_and_errors_are_swallowed(self):
        bus = EventBus()
        fired = []
        bus.subscribe(wakeup=lambda: fired.append(True))

        def explode():
            raise RuntimeError("wakeup crashed")

        bus.subscribe(wakeup=explode)
        bus.publish("tick")            # must not raise
        assert fired

    def test_drop_counts_attribute_losses_per_consumer(self):
        bus = EventBus()
        slow = bus.subscribe(maxlen=2, name="sse")
        other = bus.subscribe(maxlen=2, name="dashboard")
        fast = bus.subscribe(name="logger")
        for n in range(8):
            bus.publish("counter", n=n)
        counts = bus.drop_counts()
        assert counts["sse"] == 6
        assert counts["dashboard"] == 6
        assert counts.get("logger", 0) == 0
        # Closing keeps the blame on the books: a leaky consumer that
        # disconnects must not launder its losses.
        slow.close()
        assert bus.drop_counts()["sse"] == 6
        # Two subscriptions sharing a name sum their drops: the full
        # first subscription sheds 2 more, the new maxlen-1 one sheds 1.
        second = bus.subscribe(maxlen=1, name="dashboard")
        bus.publish("counter", n=8)
        bus.publish("counter", n=9)
        assert bus.drop_counts()["dashboard"] == 6 + 2 + 1
        other.close()
        second.close()
        fast.close()

    def test_concurrent_publishers_never_block_on_slow_consumers(self):
        bus = EventBus()
        for n in range(4):
            bus.subscribe(maxlen=2, name=f"stuck{n}")  # never drained
        errors = []

        def hammer(worker):
            try:
                for n in range(2_000):
                    bus.publish("counter", worker=worker, n=n)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        clock = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        elapsed = time.perf_counter() - clock
        assert not errors
        assert elapsed < 5.0            # drop-oldest, not backpressure
        # Every event not sitting in a queue was counted dropped.
        assert bus.dropped == 4 * (4 * 2_000 - 2)

    def test_get_blocks_until_event(self):
        bus = EventBus()
        sub = bus.subscribe()
        results = []
        waiter = threading.Thread(
            target=lambda: results.append(sub.get(timeout=5)))
        waiter.start()
        time.sleep(0.05)
        bus.publish("ping")
        waiter.join(timeout=5)
        assert results and results[0]["type"] == "ping"
        assert sub.get(timeout=0.01) is None   # drained: times out


# ----------------------------------------------------------------------
# Publishers: tracer and registry
# ----------------------------------------------------------------------
class TestPublishers:
    def test_tracer_publishes_span_open_and_close(self):
        bus = EventBus()
        tracer = Tracer()
        tracer.attach_stream(bus)
        with bus.subscribe() as sub:
            with tracer.span("solve", cat="solver", set=3) as span:
                span.inc("pivots", 7)
            events = sub.pop_all()
        kinds = [event["type"] for event in events]
        assert kinds == ["span_open", "span"]
        close = events[1]
        assert close["name"] == "solve" and close["cat"] == "solver"
        assert close["args"]["pivots"] == 7

    def test_absorb_republishes_worker_records(self):
        worker = Tracer()
        with worker.span("set.worst", cat="solver", set=1):
            pass
        bus = EventBus()
        parent = Tracer()
        parent.attach_stream(bus)
        with bus.subscribe() as sub:
            parent.absorb(worker.records())
            events = sub.pop_all()
        assert [event["type"] for event in events] == ["span"]
        assert events[0]["name"] == "set.worst"

    def test_registry_publishes_counter_and_gauge(self):
        bus = EventBus()
        registry = MetricsRegistry()
        registry.attach_stream(bus)
        with bus.subscribe() as sub:
            registry.counter("engine.lp_calls").inc(3)
            registry.gauge("service.queue_depth").set(5)
            events = sub.pop_all()
        assert events[0]["type"] == "counter"
        assert events[0]["name"] == "engine.lp_calls"
        assert events[0]["delta"] == 3 and events[0]["value"] == 3
        assert events[1]["type"] == "gauge"
        assert events[1]["value"] == 5


# ----------------------------------------------------------------------
# SSE framing
# ----------------------------------------------------------------------
class TestSseFraming:
    def test_format_and_parse_roundtrip_multi_event(self):
        bus = EventBus()
        events = [bus.publish("job_start", name="a"),
                  bus.publish("set_done", set=0, pivots=12),
                  bus.publish("job_done", name="a", worst=722)]
        wire = b"".join([sse_comment("hello")]
                        + [sse_format(event) for event in events]
                        + [sse_comment()])
        parsed = list(parse_sse_stream(io.BytesIO(wire)))
        assert [event["type"] for event in parsed] == \
            ["job_start", "set_done", "job_done"]
        assert [event["seq"] for event in parsed] == \
            [event["seq"] for event in events]
        assert parsed[1]["pivots"] == 12

    def test_parse_tolerates_partial_trailing_event(self):
        wire = sse_format({"type": "a", "seq": 1}) \
            + b"id: 2\nevent: b\n"        # EOF before dispatch
        parsed = list(parse_sse_stream(io.BytesIO(wire)))
        assert [event["type"] for event in parsed] == ["a"]


# ----------------------------------------------------------------------
# Service: SSE endpoints, keep-alive, federation
# ----------------------------------------------------------------------
class TestServiceStreaming:
    def test_watch_streams_per_set_progress_before_bound(self):
        with _thread_service() as handle:
            client = ServiceClient(port=handle.port)
            job = client.submit({"benchmark": "check_data"})
            events = list(client.watch(job["id"]))
            record = client.wait(job["id"])
        kinds = [event["type"] for event in events]
        assert "set_done" in kinds
        terminal = kinds.index("job_done") if "job_done" in kinds \
            else len(kinds)
        assert any(kind == "set_done" for kind in kinds[:terminal])
        done = [event for event in events
                if event["type"] == "job_done"]
        if done:                      # else the stream ended on state
            assert done[0]["worst"] == record["worst"]

    def test_watch_replays_for_late_attacher(self):
        with _thread_service() as handle:
            client = ServiceClient(port=handle.port)
            job = client.submit({"benchmark": "check_data"})
            client.wait(job["id"])    # finish first, then attach
            events = list(client.watch(job["id"]))
        kinds = [event["type"] for event in events]
        assert "set_done" in kinds    # ring replay, not just state

    def test_watch_reconnect_resumes_from_last_event_id(self):
        with _thread_service() as handle:
            client = ServiceClient(port=handle.port)
            job = client.submit({"benchmark": "check_data"})
            client.wait(job["id"])
            replayed = list(client.watch(job["id"]))
            assert replayed
            midpoint = replayed[len(replayed) // 2]["seq"]
            resumed = list(client.watch(job["id"], since=midpoint))
        resumed_data = [event for event in resumed
                        if event["type"] != "state"]
        assert all(event["seq"] > midpoint for event in resumed_data)
        assert len(resumed_data) < len(replayed)

    def test_firehose_carries_lifecycle_of_all_jobs(self):
        with _thread_service() as handle:
            client = ServiceClient(port=handle.port)
            sub_events = []
            done = threading.Event()

            def tail():
                for event in client.watch(since=0):
                    sub_events.append(event)
                    if event.get("type") == "job_done":
                        done.set()
                        return

            tailer = threading.Thread(target=tail, daemon=True)
            tailer.start()
            job = client.submit({"benchmark": "check_data"})
            client.wait(job["id"])
            assert done.wait(timeout=30)
            tailer.join(timeout=5)
        kinds = {event["type"] for event in sub_events}
        assert "job_done" in kinds

    def test_sse_endpoint_404_for_unknown_job(self):
        with _thread_service() as handle:
            client = ServiceClient(port=handle.port)
            with pytest.raises(Exception) as caught:
                list(client.watch("nope"))
            assert "404" in str(caught.value)

    def test_keepalive_socket_reused_across_requests(self):
        with _thread_service() as handle:
            client = ServiceClient(port=handle.port)
            client.healthz()
            first = client._local.connection
            assert client._local.used
            client.healthz()
            assert client._local.connection is first
            client.close()
            assert client._local.connection is None

    def test_metricz_counts_stream_drops_and_subscribers(self):
        with _thread_service() as handle:
            client = ServiceClient(port=handle.port)
            job = client.submit({"benchmark": "check_data"})
            client.wait(job["id"])
            snapshot = client.metricz()
        assert snapshot["stream.dropped"]["type"] == "gauge"
        assert snapshot["stream.subscribers"]["type"] == "gauge"

    def test_metricz_merge_peers_tags_origins(self):
        with _thread_service() as upstream:
            peer = f"127.0.0.1:{upstream.port}"
            with _thread_service(peers=[peer]) as handle:
                client = ServiceClient(port=handle.port)
                upstream_client = ServiceClient(port=upstream.port)
                job = upstream_client.submit({"benchmark": "check_data"})
                upstream_client.wait(job["id"])
                merged = client.metricz(merge_peers=True)
                plain = client.metricz()
                own = f"127.0.0.1:{handle.port}"
        assert merged[f"federation.origin.{peer}"]["value"] == 1
        assert merged[f"federation.origin.{own}"]["value"] == 1
        # The peer's engine counters were folded in.
        merged_lp = merged["engine.lp_calls"]["value"]
        plain_lp = plain.get("engine.lp_calls", {}).get("value", 0)
        assert merged_lp > plain_lp

    def test_merge_peers_marks_unreachable_peer_zero(self):
        with _thread_service(peers=["127.0.0.1:1"]) as handle:
            client = ServiceClient(port=handle.port)
            merged = client.metricz(merge_peers=True)
        assert merged["federation.origin.127.0.0.1:1"]["value"] == 0


# ----------------------------------------------------------------------
# Live dashboard (line mode; the ANSI path needs a real terminal)
# ----------------------------------------------------------------------
class TestLiveDashboard:
    def _run(self, events):
        bus = EventBus()
        out = io.StringIO()
        with LiveDashboard(bus, stream=out, live=False, interval=0.01):
            for kind, payload in events:
                bus.publish(kind, **payload)
            time.sleep(0.1)
        return out.getvalue()

    def test_line_mode_logs_lifecycle(self):
        text = self._run([
            ("job_start", {"name": "des"}),
            ("job_sets", {"name": "des", "sets": 2}),
            ("set_done", {"job": "j1", "name": "des", "set": 0,
                          "pivots": 40, "nodes": 2}),
            ("set_done", {"job": "j1", "name": "des", "set": 1,
                          "pivots": 41, "nodes": 2}),
            ("job_done", {"name": "des", "status": "ok", "sets": 2,
                          "worst": 722}),
        ])
        assert "job des: started" in text
        assert "set 0 done" in text
        assert "job des: ok 2 sets worst=722" in text
        assert "jobs done" in text            # final summary line

    def test_line_mode_counts_cache_hits(self):
        text = self._run([
            ("counter", {"name": "engine.cache.hits.job", "delta": 1,
                         "value": 1}),
            ("counter", {"name": "engine.cache.misses.job", "delta": 1,
                         "value": 1}),
        ])
        assert "cache 50% hit" in text

    def test_live_capable_rejects_dumb_terminals(self, monkeypatch):
        from repro.obs.dashboard import live_capable

        monkeypatch.setenv("TERM", "dumb")
        assert not live_capable(io.StringIO())
        monkeypatch.setenv("TERM", "xterm-256color")
        assert not live_capable(io.StringIO())   # not a tty either


# ----------------------------------------------------------------------
# Trace diffing
# ----------------------------------------------------------------------
def _trace_file(tmp_path, name, pivots_by_set):
    events = [{"name": "solve", "cat": "pipeline", "ph": "X",
               "ts": 0, "dur": 1000, "pid": 1, "tid": 1, "args": {}}]
    for index, pivots in pivots_by_set.items():
        events.append({
            "name": "set.worst", "cat": "solver", "ph": "X",
            "ts": index * 100, "dur": 500 + pivots, "pid": 1, "tid": 1,
            "args": {"set": index, "pivots": pivots, "nodes": 2,
                     "lp_calls": 1}})
    path = tmp_path / name
    path.write_text(json.dumps({"traceEvents": events}))
    return str(path)


class TestTraceDiff:
    def test_names_the_set_whose_pivots_changed(self, tmp_path):
        before = load_trace_events(
            _trace_file(tmp_path, "a.json", {0: 100, 1: 50}))
        after = load_trace_events(
            _trace_file(tmp_path, "b.json", {0: 40, 1: 50}))
        deltas = diff_traces(before, after)
        changed = [delta for delta in deltas if delta.changed]
        assert changed
        top = changed[0]
        assert top.key == "solver:set.worst[set=0]"
        assert top.effort_delta("pivots") == -60
        # set 1 is unchanged in effort, so it must not be flagged.
        assert all(delta.key != "solver:set.worst[set=1]"
                   for delta in changed)

    def test_render_reports_total_row(self, tmp_path):
        before = load_trace_events(
            _trace_file(tmp_path, "a.json", {0: 100}))
        after = load_trace_events(
            _trace_file(tmp_path, "b.json", {0: 70}))
        text = render_trace_diff(diff_traces(before, after))
        assert "set.worst[set=0]" in text
        assert "total" in text

    def test_span_key_and_aggregate(self, tmp_path):
        events = load_trace_events(
            _trace_file(tmp_path, "a.json", {0: 10, 1: 20}))
        aggregates = aggregate_trace(events)
        assert span_key(events[1]) == "solver:set.worst[set=0]"
        assert aggregates["pipeline:solve"].count == 1

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"counters": {}}))
        with pytest.raises(SchemaMismatchError) as caught:
            load_trace_events(str(path))
        assert "repro obs diff" in str(caught.value)


# ----------------------------------------------------------------------
# Schema-version guard rails through the CLI
# ----------------------------------------------------------------------
class TestSchemaMismatchExits:
    def test_obs_diff_rejects_future_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({"schema": 99, "counters": {}}))
        code = main(["obs", "diff", str(snap), str(snap)])
        err = capsys.readouterr().err
        assert code == 1
        assert "schema 99" in err and "schema 2" in err

    def test_obs_diff_accepts_v1_and_v2_snapshots(self, tmp_path,
                                                  capsys):
        v1 = tmp_path / "v1.json"
        v1.write_text(json.dumps({"schema": 1, "counters": {}}))
        v2 = tmp_path / "v2.json"
        v2.write_text(json.dumps({"schema": 2, "counters": {}}))
        assert main(["obs", "diff", str(v1), str(v2)]) == 0

    def test_obs_dump_rejects_future_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({"schema": 7}))
        assert main(["obs", "dump", str(snap)]) == 1
        assert "re-export" in capsys.readouterr().err

    def test_explain_against_rejects_future_schema(self, tmp_path,
                                                   capsys):
        saved = tmp_path / "expl.json"
        saved.write_text(json.dumps({"schema": 9, "bound": 1}))
        code = main(["explain", "check_data", "--against", str(saved)])
        err = capsys.readouterr().err
        assert code == 1
        assert "version 9" in err

    def test_explain_against_rejects_wrong_shape(self, tmp_path,
                                                 capsys):
        saved = tmp_path / "expl.json"
        saved.write_text(json.dumps({"not": "an explanation"}))
        code = main(["explain", "check_data", "--against", str(saved)])
        assert code == 1
        assert "explain --json" in capsys.readouterr().err

    def test_diff_trace_rejects_metrics_snapshot(self, tmp_path,
                                                 capsys):
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps({"schema": 1, "counters": {}}))
        code = main(["obs", "diff-trace", str(snap), str(snap)])
        assert code == 1
        assert "repro obs diff" in capsys.readouterr().err

    def test_current_schema_snapshots_round_trip(self, tmp_path,
                                                 capsys):
        registry = MetricsRegistry()
        registry.counter("engine.lp_calls").inc(4)
        path = tmp_path / "snap.json"
        registry.dump(path)
        data = json.loads(path.read_text())
        assert data["schema"] == 2
        assert main(["obs", "dump", str(path)]) == 0
        assert "engine.lp_calls" in capsys.readouterr().out

"""Structural constraints vs. the paper's Figs. 2-4 equations (2)-(13)."""

from repro.cfg import CallGraph, build_cfg, build_cfgs
from repro.codegen import compile_source
from repro.constraints import (entry_constraint, flow_constraints,
                               linking_constraints, structural_system)
from repro.sim import run_program

IF_ELSE = """
int f(int p) {
    int q;
    if (p)
        q = 1;
    else
        q = 2;
    return q;
}
"""

WHILE_LOOP = """
int f(int p) {
    int q;
    q = p;
    while (q < 10)
        q++;
    return q;
}
"""

CALLS = """
int total;
void store(int i) { total = total + i; }
void f() {
    int i; int n;
    i = 10;
    store(i);
    n = 2 * i;
    store(n);
}
"""


def constraint_map(constraints):
    """{frozenset of (var, coef)} keyed textual forms for comparison."""
    forms = set()
    for c in constraints:
        terms = frozenset(c.expr.coefs.items())
        forms.add((terms, c.sense, c.rhs))
    return forms


def eq(lhs: dict, rhs_const: float = 0.0):
    return (frozenset(lhs.items()), "==", rhs_const)


class TestPaperFig2:
    """if-then-else: x1 = d1 = d2+d3, x2 = d2 = d4, x3 = d3 = d5,
    x4 = d4+d5 = d6 (paper eqs. 2-5)."""

    def test_equations_match(self):
        program = compile_source(IF_ELSE)
        cfg = build_cfg(program, program.functions["f"])
        forms = constraint_map(flow_constraints(cfg))
        f = "f::"
        expected = [
            eq({f + "x1": 1.0, f + "d1": -1.0}),
            eq({f + "x1": 1.0, f + "d2": -1.0, f + "d3": -1.0}),
            eq({f + "x2": 1.0, f + "d2": -1.0}),
            eq({f + "x2": 1.0, f + "d4": -1.0}),
            eq({f + "x3": 1.0, f + "d3": -1.0}),
            eq({f + "x3": 1.0, f + "d5": -1.0}),
            eq({f + "x4": 1.0, f + "d4": -1.0, f + "d5": -1.0}),
            eq({f + "x4": 1.0, f + "d6": -1.0}),
        ]
        for form in expected:
            assert form in forms, f"missing {form}"
        assert len(forms) == len(expected)

    def test_entry_constraint_is_d1_equals_1(self):
        program = compile_source(IF_ELSE)
        cfg = build_cfg(program, program.functions["f"])
        c = entry_constraint(cfg)
        assert constraint_map([c]) == {
            (frozenset({("f::d1", 1.0)}.items() if False else
                       {("f::d1", 1.0)}), "==", 1.0)}


class TestPaperFig3:
    """while loop: every block's in-flow = count = out-flow, with the
    back edge closing the cycle (paper eqs. 6-9, up to edge naming)."""

    def test_counts_and_arity(self):
        program = compile_source(WHILE_LOOP)
        cfg = build_cfg(program, program.functions["f"])
        constraints = flow_constraints(cfg)
        # 4 blocks, two equalities each.
        assert len(constraints) == 8
        forms = constraint_map(constraints)
        f = "f::"
        # Header B2 receives two edges and emits two edges (eq. 7).
        in_form = [form for form in forms
                   if (f + "x2", 1.0) in form[0] and len(form[0]) == 3]
        assert len(in_form) == 2

    def test_observed_counts_satisfy_all_structural_constraints(self):
        program = compile_source(WHILE_LOOP)
        cfgs = build_cfgs(program)
        graph = CallGraph(cfgs)
        system = structural_system(graph, "f")
        assignment = _edge_and_block_counts(program, cfgs, "f", 4)
        for constraint in system:
            assert constraint.satisfied_by(assignment), str(constraint)


class TestPaperFig4:
    """function calls: x1 = d1 = f1, x2 = f1 = f2, and the callee link
    d(store entry) = f1 + f2 (paper eqs. 10-12)."""

    def test_caller_equations(self):
        program = compile_source(CALLS)
        cfg = build_cfg(program, program.functions["f"])
        forms = constraint_map(flow_constraints(cfg))
        f = "f::"
        assert eq({f + "x1": 1.0, f + "d1": -1.0}) in forms
        assert eq({f + "x1": 1.0, f + "f1": -1.0}) in forms
        assert eq({f + "x2": 1.0, f + "f1": -1.0}) in forms
        assert eq({f + "x2": 1.0, f + "f2": -1.0}) in forms

    def test_callee_link_eq12(self):
        program = compile_source(CALLS)
        graph = CallGraph(build_cfgs(program))
        forms = constraint_map(linking_constraints(graph, "f"))
        assert eq({"store::d1": 1.0, "f::f1": -1.0, "f::f2": -1.0}) in forms

    def test_entry_link_eq13(self):
        program = compile_source(CALLS)
        graph = CallGraph(build_cfgs(program))
        forms = constraint_map(linking_constraints(graph, "f"))
        assert (frozenset({("f::d1", 1.0)}), "==", 1.0) in forms

    def test_observed_counts_satisfy_system(self):
        program = compile_source(CALLS)
        cfgs = build_cfgs(program)
        graph = CallGraph(cfgs)
        system = structural_system(graph, "f")
        assignment = _edge_and_block_counts(program, cfgs, "f")
        for constraint in system:
            assert constraint.satisfied_by(assignment), str(constraint)


def _edge_and_block_counts(program, cfgs, entry, *args):
    """Observed block *and* edge counts for one run.

    The interpreter counts instruction executions; edges are recovered
    from an instruction-index trace: edge (u, v) is taken whenever v's
    leader executes immediately after an instruction of u.
    """
    from repro.sim import Interpreter

    trace = []

    class Recorder:
        def execute(self, instr):
            trace.append(instr.addr // 4)
            return 0

    interp = Interpreter(program, cycle_model=Recorder())
    interp.run(entry, *args)

    assignment = {}
    index_to_block = {}
    for name, cfg in cfgs.items():
        for block in cfg.blocks.values():
            assignment[f"{name}::x{block.id}"] = 0
            for i in range(block.start, block.end):
                index_to_block[i] = (name, block)
        for edge in cfg.edges:
            assignment[f"{name}::{edge.name}"] = 0

    prev = None
    for index in trace:
        name, block = index_to_block[index]
        if index == block.start:
            assignment[f"{name}::x{block.id}"] += 1
            # Find which edge got us here.
            cfg = cfgs[name]
            if prev is None:
                assignment[f"{name}::{cfg.entry_edge.name}"] += 1
            else:
                pname, pblock = prev
                matched = False
                if pname == name:
                    for edge in cfg.in_edges(block.id):
                        if edge.src == pblock.id:
                            assignment[f"{name}::{edge.name}"] += 1
                            matched = True
                            break
                if not matched:
                    if pname != name:
                        # Entering a callee or returning from one.
                        if index == cfg.blocks[cfg.entry_block].start:
                            assignment[f"{name}::{cfg.entry_edge.name}"] += 1
                        else:
                            for edge in cfg.in_edges(block.id):
                                if edge.is_call:
                                    assignment[f"{name}::{edge.name}"] += 1
                                    break
        prev = (name, block)

    # Exit edges: the block executing RET leaves through its exit edge.
    for name, cfg in cfgs.items():
        for edge in cfg.exit_edges():
            block = cfg.blocks[edge.src]
            # Every execution of a RET-terminated block exits.
            assignment[f"{name}::{edge.name}"] = \
                assignment[f"{name}::x{block.id}"]
    return assignment

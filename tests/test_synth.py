"""Tightness lab (repro.synth): generator, corpus, worst-case input
search, soundness fuzzing, and the delta-debugging shrinker."""

import json
import random

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.programs import get_benchmark
from repro.synth import (Corpus, CorpusError, Domain, check_program,
                         generate, generate_many, hunt_benchmark,
                         mutate_inputs, path_agreement,
                         random_minic_cases, run_campaign, search_worst,
                         shrink, submit_corpus, witness_targets)
from repro.synth.gen import GRADES, from_ir


# ----------------------------------------------------------------------
# Domains
# ----------------------------------------------------------------------
class TestDomain:
    def test_clamp_and_sample_stay_in_range(self):
        dom = Domain(-5, 9)
        rng = random.Random(1)
        assert dom.clamp(100) == 9 and dom.clamp(-100) == -5
        assert all(-5 <= dom.sample(rng) <= 9 for _ in range(50))

    def test_array_domain_round_trips_through_json(self):
        dom = Domain(0, 255, size=64)
        again = Domain.from_json(json.loads(json.dumps(dom.to_json())))
        assert again == dom


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
class TestGenerator:
    def test_same_seed_same_program(self):
        a, b = generate(17, grade="small"), generate(17, grade="small")
        assert a.source == b.source
        assert a.digest == b.digest
        assert a.loop_bounds == b.loop_bounds

    def test_different_seeds_differ(self):
        digests = {generate(s, grade="small").digest
                   for s in range(20)}
        assert len(digests) > 15

    @pytest.mark.parametrize("grade", sorted(GRADES))
    def test_every_grade_compiles_and_bounds_enclose(self, grade):
        for prog in generate_many(seed=3, count=4, grade=grade):
            report = prog.analysis().estimate()
            for inputs in prog.sample_inputs(3):
                measured = prog.run(inputs).cycles
                assert report.best <= measured <= report.worst, \
                    prog.source

    def test_loop_bounds_name_real_loops(self):
        prog = generate(5, grade="medium")
        analysis = prog.analysis()
        headers = {(l.function, l.header_line) for l in analysis.loops}
        declared = {(fn, line) for fn, line, _, _ in prog.loop_bounds}
        assert declared == headers

    def test_serialization_round_trip(self):
        prog = generate(9, grade="small")
        again = type(prog).from_dict(prog.to_dict())
        assert again.source == prog.source
        assert again.digest == prog.digest
        assert again.domain == prog.domain

    def test_random_minic_cases_back_compat(self):
        cases = list(random_minic_cases(seed=42, count=5))
        assert len(cases) == 5
        for source, inputs in cases:
            assert "int f(" in source or "void f(" in source
            assert isinstance(inputs, dict)


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------
class TestCorpus:
    def test_round_trip_and_idempotence(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        prog = generate(1, grade="tiny")
        digest = corpus.add(prog, meta={"origin": "test"})
        assert digest == prog.digest
        assert corpus.add(prog) == digest      # idempotent
        assert len(corpus) == 1
        assert digest in corpus
        loaded = corpus.get(digest)
        assert loaded.source == prog.source
        assert loaded.loop_bounds == prog.loop_bounds

    def test_tampered_entry_is_rejected(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        digest = corpus.add(generate(2, grade="tiny"))
        path = corpus.root / digest[:2] / f"{digest}.json"
        data = json.loads(path.read_text())
        data["source"] += "\n// tampered\n"
        path.write_text(json.dumps(data))
        with pytest.raises(CorpusError):
            corpus.get(digest)

    def test_iteration_covers_all_ids(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        digests = {corpus.add(p)
                   for p in generate_many(seed=4, count=6,
                                          grade="tiny")}
        assert set(corpus.ids()) == digests
        assert {p.digest for p in corpus} == digests


# ----------------------------------------------------------------------
# Worst-case input search
# ----------------------------------------------------------------------
class TestSearch:
    def test_piksrt_realizes_reference_worst_case(self):
        """Seeded with the curated reverse-sorted input, the search
        must realize the Table III reference measurement exactly."""
        bench = get_benchmark("piksrt")
        result = hunt_benchmark(bench, iterations=8, seed=0)
        assert result.realized == result.reference
        assert result.reference <= result.realized <= result.estimated
        if result.estimated == result.reference:
            # Where the paper bound is exact the search must close
            # the gap completely.
            assert result.realized == result.estimated

    def test_check_data_realizes_reference_worst_case(self):
        bench = get_benchmark("check_data")
        result = hunt_benchmark(bench, iterations=8, seed=0)
        assert result.realized == result.reference
        assert result.realized <= result.estimated

    def test_search_climbs_from_a_bad_seed(self):
        """Starting from the *best*-case input only (sorted array),
        hill-climbing must find something strictly worse."""
        bench = get_benchmark("piksrt")
        analysis = bench.make_analysis()
        sorted_inputs = dict(bench.best_data.globals)
        floor = _run_inputs(bench, sorted_inputs)
        result = search_worst(
            bench.program, bench.entry, {"arr": Domain(-32, 32, 10)},
            analysis, iterations=40, seed=1,
            seed_inputs=(sorted_inputs,), name="piksrt-climb")
        assert result.realized > floor
        # The bad seed's measurement is recorded as the reference,
        # and the search never ends below the best seed it saw.
        assert result.reference == floor
        assert result.realized >= result.seeded >= result.reference

    def test_witness_agreement_scores_matching_paths_higher(self):
        bench = get_benchmark("check_data")
        analysis = bench.make_analysis()
        report = analysis.estimate()
        from repro.obs.explain import explain_bound

        explanation = explain_bound(analysis, report, "worst")
        targets = witness_targets(explanation)
        assert targets, "merged-scope witness should name blocks"
        worst = bench.run(bench.worst_data)
        best = bench.run(bench.best_data)
        cfgs = analysis.cfgs
        from repro.synth.search import observed_blocks

        agree_worst = path_agreement(targets,
                                     observed_blocks(worst, cfgs))
        agree_best = path_agreement(targets,
                                    observed_blocks(best, cfgs))
        assert agree_worst > agree_best

    def test_mutate_inputs_respects_domain(self):
        domain = {"arr": Domain(0, 7, 5), "n": Domain(-3, 3)}
        rng = random.Random(7)
        inputs = {"arr": [0, 1, 2, 3, 4], "n": 0}
        for _ in range(100):
            inputs = mutate_inputs(inputs, domain, rng)
            assert all(0 <= v <= 7 for v in inputs["arr"])
            assert len(inputs["arr"]) == 5
            assert -3 <= inputs["n"] <= 3

    def test_all_benchmarks_have_usable_domains(self):
        """Every routine with inputs declares (or derives) a domain
        the search can sample without crashing the simulator."""
        from repro.synth import benchmark_domain

        for name in ("check_data", "piksrt", "line", "circle",
                     "recon", "fullsearch"):
            bench = get_benchmark(name)
            domain = benchmark_domain(bench)
            assert domain, name
            rng = random.Random(0)
            inputs = {k: d.sample(rng) for k, d in domain.items()}
            measured = _run_inputs(bench, inputs)
            assert measured > 0


def _run_inputs(bench, inputs):
    from repro.sim import run_with_cycles, Dataset

    return run_with_cycles(bench.program, bench.entry,
                           Dataset(globals=inputs)).cycles


# ----------------------------------------------------------------------
# Fuzz campaign
# ----------------------------------------------------------------------
class TestFuzz:
    def test_small_campaign_is_clean(self, tmp_path):
        registry = MetricsRegistry()
        corpus = Corpus(tmp_path / "corpus")
        report = run_campaign(seed=11, count=8, grade="tiny",
                              corpus=corpus, registry=registry)
        assert report.ok, report.render()
        assert report.programs == 8
        assert len(corpus) == 8
        assert registry.value("synth.fuzz.programs") == 8
        assert registry.value("synth.fuzz.sim_runs") > 0
        # Serial and engine analyses both ran per program.
        assert registry.value("synth.fuzz.analyses") == 16

    def test_campaign_emits_span(self):
        tracer = Tracer()
        run_campaign(seed=3, count=2, grade="tiny", engine=False,
                     tracer=tracer)
        names = [s["name"] for s in tracer.records()]
        assert "synth.fuzz" in names

    def test_check_program_flags_broken_worst_bound(self):
        prog = generate(21, grade="tiny")

        def broken(report):
            return report.best, report.best   # collapse to best case

        violation = check_program(prog, engine=False,
                                  bound_fn=broken)
        assert violation is not None
        assert violation.kind == "worst"
        assert violation.measured > violation.worst

    def test_campaign_collects_and_shrinks_violations(self):
        def broken(report):
            return report.best, report.best

        report = run_campaign(seed=5, count=2, grade="tiny",
                              engine=False, bound_fn=broken,
                              max_violations=1)
        assert not report.ok
        violation = report.violations[0]
        assert violation.minimized is not None
        assert violation.shrink_steps > 0
        rendered = report.render()
        assert "VIOLATION" in rendered and "minimized" in rendered


# ----------------------------------------------------------------------
# Shrinker
# ----------------------------------------------------------------------
class TestShrink:
    def test_minimized_program_still_violates_and_is_1_minimal(self):
        prog = generate(33, grade="small")

        def broken(report):
            return report.best, report.best

        def is_violating(candidate):
            found = check_program(candidate, engine=False,
                                  bound_fn=broken)
            return found is not None and found.kind == "worst"

        assert is_violating(prog)
        minimal, steps = shrink(prog, is_violating)
        assert steps > 0
        assert is_violating(minimal)
        assert len(minimal.source) <= len(prog.source)
        # 1-minimality: no single further reduction still violates.
        from repro.synth.fuzz import _reductions

        for candidate_ir in _reductions(minimal.ir):
            candidate = from_ir(candidate_ir, seed=minimal.seed,
                                grade=minimal.grade,
                                domain=minimal.domain)
            try:
                still = is_violating(candidate)
            except Exception:
                still = False
            assert not still

    def test_shrink_gives_up_cleanly_without_ir(self):
        prog = generate(1, grade="tiny")
        stripped = type(prog)(
            seed=prog.seed, grade=prog.grade, source=prog.source,
            entry=prog.entry, loop_bounds=prog.loop_bounds,
            domain=prog.domain, ir=None)
        minimal, steps = shrink(stripped, lambda c: True)
        assert minimal is stripped and steps == 0


# ----------------------------------------------------------------------
# Corpus -> service feed
# ----------------------------------------------------------------------
class TestServiceFeed:
    def test_submit_corpus_round_trips_bounds(self, tmp_path):
        from repro.service import ServiceClient, ServiceThread

        corpus = Corpus(tmp_path / "corpus")
        progs = list(generate_many(seed=8, count=2, grade="tiny"))
        for prog in progs:
            corpus.add(prog)
        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache") as handle:
            client = ServiceClient(port=handle.port)
            records = submit_corpus(client, corpus)
        assert len(records) == 2
        by_digest = {r["digest"]: r for r in records}
        for prog in progs:
            serial = prog.analysis().estimate()
            record = by_digest[prog.digest]
            assert record["best"] == serial.best
            assert record["worst"] == serial.worst

    def test_submit_corpus_respects_limit_and_ids(self, tmp_path):
        from repro.service import ServiceClient, ServiceThread

        corpus = Corpus(tmp_path / "corpus")
        digests = [corpus.add(p) for p in
                   generate_many(seed=9, count=3, grade="tiny")]
        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache") as handle:
            client = ServiceClient(port=handle.port)
            records = submit_corpus(client, corpus,
                                    ids=[digests[0]], limit=5)
        assert [r["digest"] for r in records] == [digests[0]]


# ----------------------------------------------------------------------
# Experiments integration
# ----------------------------------------------------------------------
class TestTightnessTable:
    def test_rows_are_sound_and_render(self):
        from repro.experiments import Experiments, render_tightness

        exp = Experiments(benchmarks={
            "check_data": get_benchmark("check_data"),
            "piksrt": get_benchmark("piksrt"),
        })
        rows = exp.tightness(iterations=6, seed=0)
        assert [r.function for r in rows] == ["check_data", "piksrt"]
        for row in rows:
            assert row.sound
            assert 0 < row.ratio <= 1
        text = render_tightness(rows)
        assert "Realized" in text and "piksrt" in text


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
class TestCLI:
    def test_synth_gen_writes_corpus(self, tmp_path, capsys):
        from repro.cli import main

        corpus_dir = tmp_path / "corpus"
        code = main(["synth", "gen", "--seed", "7", "--count", "3",
                     "--grade", "tiny", "--corpus", str(corpus_dir)])
        assert code == 0
        assert len(Corpus(corpus_dir)) == 3
        assert "3 programs" in capsys.readouterr().out

    def test_synth_fuzz_clean_campaign(self, tmp_path, capsys):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        code = main(["synth", "fuzz", "--seed", "13", "--count", "3",
                     "--grade", "tiny", "--no-engine",
                     "--metrics", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "soundness: OK" in out
        snapshot = json.loads(metrics.read_text())
        assert "synth.fuzz.programs" in snapshot

    def test_synth_tightness_table(self, capsys):
        from repro.cli import main

        code = main(["synth", "tightness", "check_data",
                     "--iterations", "4"])
        assert code == 0
        assert "check_data" in capsys.readouterr().out

    def test_submit_corpus_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.service import ServiceThread

        corpus_dir = tmp_path / "corpus"
        corpus = Corpus(corpus_dir)
        corpus.add(generate(2, grade="tiny"))
        with ServiceThread(workers=1, executor="thread",
                           cache_dir=tmp_path / "cache") as handle:
            code = main(["submit", "--corpus", str(corpus_dir),
                         "--port", str(handle.port)])
        out = capsys.readouterr().out
        assert code == 0
        assert "synth-" in out

"""Tests for block tracing, the Markdown report, the Fig.-1 renderer
and the report CLI subcommand."""

import pytest

from repro import Analysis
from repro.analysis import markdown_report, worst_case_path
from repro.cfg import build_cfgs
from repro.codegen import compile_source
from repro.constraints import structural_system
from repro.cfg import CallGraph
from repro.sim import record_block_trace

LOOPY = """
int data[6];
int f() {
    int s = 0;
    for (int i = 0; i < 6; i++) {
        if (data[i] > 0)
            s += data[i];
        else
            s -= 1;
    }
    return s;
}
"""

CALLS = """
int acc;
int leaf(int v) { return v * v; }
void f() {
    acc = leaf(2);
    acc = acc + leaf(3);
}
"""


class TestBlockTrace:
    def test_sequence_starts_at_entry(self):
        program = compile_source(LOOPY)
        trace = record_block_trace(program, "f",
                                   globals_init={"data": [1] * 6})
        assert trace.sequence[0] == ("f", 1)
        assert trace.result.value == 6

    def test_projection_by_function(self):
        program = compile_source(CALLS)
        trace = record_block_trace(program, "f")
        assert trace.for_function("leaf") == [1, 1]
        assert set(fn for fn, _ in trace.sequence) == {"f", "leaf"}

    def test_edge_counts_satisfy_structural_constraints(self):
        program = compile_source(LOOPY)
        cfgs = build_cfgs(program)
        trace = record_block_trace(program, "f",
                                   globals_init={"data": [1, -1, 2, -2,
                                                          3, -3]})
        counts = trace.edge_counts(cfgs["f"])
        assignment = {f"f::{name}": value
                      for name, value in counts.items()}
        for block in cfgs["f"].blocks.values():
            assignment[f"f::{block.var}"] = \
                trace.for_function("f").count(block.id)
        for constraint in structural_system(CallGraph(cfgs), "f"):
            assert constraint.satisfied_by(assignment), str(constraint)

    def test_trace_block_counts_match_instruction_counters(self):
        program = compile_source(LOOPY)
        cfgs = build_cfgs(program)
        trace = record_block_trace(program, "f",
                                   globals_init={"data": [0, 1, 0, 1,
                                                          0, 1]})
        for block in cfgs["f"].blocks.values():
            assert trace.for_function("f").count(block.id) == \
                trace.result.counts[block.start]

    def test_worst_data_trace_realizes_ilp_counts(self):
        """The simulated worst-data path must be *a* feasible path; on
        this simple kernel it matches the ILP's block counts exactly."""
        program = compile_source(LOOPY)
        analysis = Analysis(program, entry="f")
        analysis.bound_loop(lo=6, hi=6)
        ilp = worst_case_path(analysis)
        trace = record_block_trace(program, "f",
                                   globals_init={"data": [1] * 6})
        # Worst case takes the then-branch (heavier: LD + ADD) 6 times.
        assert trace.for_function("f") == ilp.blocks


class TestMarkdownReport:
    def test_contains_sections(self):
        analysis = Analysis(LOOPY, entry="f")
        analysis.bound_loop(lo=6, hi=6)
        text = markdown_report(analysis)
        assert "# Timing report: `f()`" in text
        assert "## Worst-case block accounting" in text
        assert "## Worst-case path" in text
        assert "## Loops and bounds" in text
        assert "[6, 6]" in text

    def test_block_table_truncation(self):
        analysis = Analysis(LOOPY, entry="f")
        analysis.bound_loop(lo=6, hi=6)
        text = markdown_report(analysis, max_blocks=2)
        assert "more" in text

    def test_accepts_precomputed_report(self):
        analysis = Analysis(LOOPY, entry="f")
        analysis.bound_loop(lo=6, hi=6)
        report = analysis.estimate()
        text = markdown_report(analysis, report)
        assert f"[{report.best:,}, {report.worst:,}]" in text

    def test_no_loops_case(self):
        analysis = Analysis("int f(int a) { return a + 1; }", entry="f")
        text = markdown_report(analysis)
        assert "no loops reachable" in text


class TestFig1Renderer:
    def test_nesting_bars(self):
        from repro.experiments import render_fig1
        from repro.experiments.tables import BoundRow

        rows = [BoundRow("demo", (0, 100), (25, 75), (0.0, 0.0))]
        text = render_fig1(rows)
        assert "demo" in text
        bar = text.splitlines()[-1]
        assert "[" in bar and "]" in bar and "#" in bar

    def test_tight_row_renders(self):
        from repro.experiments import render_fig1
        from repro.experiments.tables import BoundRow

        rows = [BoundRow("tight", (50, 50), (50, 50), (0.0, 0.0))]
        assert "tight" in render_fig1(rows)


class TestReportCLI:
    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.c"
        path.write_text(LOOPY)
        code = main(["report", str(path), "--entry", "f"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# Timing report: `f()`" in out
        assert "derived" not in out     # silent auto-bounding

    def test_report_missing_bounds(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.c"
        path.write_text(
            "int f(int n) { int s = 0; while (s < n) s++; return s; }")
        code = main(["report", str(path), "--entry", "f"])
        assert code == 2
        assert "needing --bound" in capsys.readouterr().err

"""Seeded random MiniC program generator for differential tests.

Unlike the hypothesis strategy in test_properties.py this is a plain
deterministic generator, usable from any test that wants N fixed random
cases without shrinking machinery.
"""

from __future__ import annotations

import random

VARS = ["g0", "g1", "g2", "g3"]


def random_minic_cases(seed: int, count: int):
    """Yield (source, global_inputs) pairs of valid MiniC programs."""
    rng = random.Random(seed)
    for _ in range(count):
        yield _one_case(rng)


def _one_case(rng: random.Random):
    counter = [0]

    def expr() -> str:
        kind = rng.choice(["var", "const", "add", "mul", "cmp", "shift"])
        if kind == "var":
            return rng.choice(VARS)
        if kind == "const":
            return str(rng.randint(-9, 9))
        left = rng.choice(VARS)
        right = rng.randint(1, 6)
        if kind == "add":
            return f"({left} + {right})"
        if kind == "mul":
            return f"({left} * {right})"
        if kind == "cmp":
            return f"({left} < {right})"
        return f"({left} << {rng.randint(0, 3)})"

    def statement(depth: int) -> str:
        choices = ["assign", "assign", "if"]
        if depth < 2:
            choices.append("loop")
        kind = rng.choice(choices)
        if kind == "assign":
            return f"{rng.choice(VARS)} = {expr()};"
        if kind == "if":
            body = statement(depth + 1)
            if rng.random() < 0.5:
                other = statement(depth + 1)
                return (f"if ({rng.choice(VARS)} > {rng.randint(-4, 4)})"
                        f" {{\n{body}\n}} else {{\n{other}\n}}")
            return (f"if ({rng.choice(VARS)} > {rng.randint(-4, 4)})"
                    f" {{\n{body}\n}}")
        counter[0] += 1
        index = f"i{counter[0]}"
        trips = rng.randint(1, 6)
        body = statement(depth + 1)
        return (f"for (int {index} = 0; {index} < {trips}; {index}++)"
                f" {{\n{body}\n}}")

    body = "\n".join(statement(0) for _ in range(rng.randint(2, 5)))
    source = (
        "int g0; int g1; int g2; int g3;\n"
        "int f() {\n"
        f"{body}\n"
        "return g0 + g1 * 3 + g2 - g3;\n"
        "}\n")
    inputs = {name: rng.randint(-15, 15) for name in VARS}
    return source, inputs
